//! Dense matrices over GF(2^8).
//!
//! Matrices drive the systematic Reed–Solomon codec: the generator matrix maps
//! data shards to coded shards, and reconstruction inverts the sub-matrix of
//! surviving rows. Only small matrices (tens of rows) ever occur, so a simple
//! dense representation with Gauss–Jordan elimination is sufficient and easy
//! to audit.

use std::fmt;
use std::ops::{Index, IndexMut, Mul};

use serde::{Deserialize, Serialize};

use crate::{Gf256, GfError};

/// A dense row-major matrix over GF(2^8).
///
/// # Example
///
/// ```
/// use drc_gf::{Gf256, Matrix};
///
/// # fn main() -> Result<(), drc_gf::GfError> {
/// let v = Matrix::vandermonde(3, 3)?;
/// let inv = v.inverse()?;
/// assert_eq!(&v * &inv, Matrix::identity(3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Gf256>,
}

impl Matrix {
    /// Creates a zero-filled matrix with the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zero(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix {
            rows,
            cols,
            data: vec![Gf256::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m[(i, i)] = Gf256::ONE;
        }
        m
    }

    /// Creates a matrix from rows of byte values.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::DimensionMismatch`] if the rows do not all have the
    /// same, non-zero length.
    pub fn from_rows(rows: &[Vec<u8>]) -> Result<Self, GfError> {
        let nrows = rows.len();
        let ncols = rows.first().map(|r| r.len()).unwrap_or(0);
        if nrows == 0 || ncols == 0 || rows.iter().any(|r| r.len() != ncols) {
            return Err(GfError::DimensionMismatch {
                expected: "non-empty rows of equal length".to_string(),
                found: format!("{nrows} rows"),
            });
        }
        let data = rows
            .iter()
            .flat_map(|r| r.iter().copied().map(Gf256::new))
            .collect();
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Creates the `rows × cols` Vandermonde matrix with `a[i][j] = i^j`.
    ///
    /// Any square sub-matrix formed from distinct rows of a Vandermonde matrix
    /// with distinct evaluation points is invertible, which is exactly the
    /// property an erasure code's generator matrix needs.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::DimensionMismatch`] if `rows` exceeds the field size
    /// (evaluation points would repeat) or either dimension is zero.
    pub fn vandermonde(rows: usize, cols: usize) -> Result<Self, GfError> {
        if rows == 0 || cols == 0 || rows > 256 {
            return Err(GfError::DimensionMismatch {
                expected: "1..=256 rows and cols >= 1".to_string(),
                found: format!("{rows}x{cols}"),
            });
        }
        let mut m = Matrix::zero(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = Gf256::new(i as u8).pow(j as u32);
            }
        }
        Ok(m)
    }

    /// Creates a `parity × data` Cauchy matrix with entries
    /// `1 / (x_i + y_j)` for `x_i = data + i`, `y_j = j`.
    ///
    /// Every square sub-matrix of a Cauchy matrix is invertible, making it an
    /// alternative parity-generator construction to the Vandermonde approach.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::DimensionMismatch`] if `parity + data > 256`, since
    /// the construction then runs out of distinct field elements.
    pub fn cauchy(parity: usize, data: usize) -> Result<Self, GfError> {
        if parity == 0 || data == 0 || parity + data > 256 {
            return Err(GfError::DimensionMismatch {
                expected: "parity + data <= 256, both non-zero".to_string(),
                found: format!("parity={parity}, data={data}"),
            });
        }
        let mut m = Matrix::zero(parity, data);
        for i in 0..parity {
            for j in 0..data {
                let x = Gf256::new((data + i) as u8);
                let y = Gf256::new(j as u8);
                m[(i, j)] = (x + y).inv();
            }
        }
        Ok(m)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[Gf256] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterates over the rows of the matrix.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[Gf256]> {
        self.data.chunks_exact(self.cols)
    }

    /// Returns rows `start..end` as one contiguous row-major coefficient
    /// slab (the matrix is stored row-major), suitable for
    /// [`crate::slice::matrix_mul_into`].
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.rows()`.
    pub fn rows_flat(&self, start: usize, end: usize) -> &[Gf256] {
        assert!(start <= end && end <= self.rows, "row range out of bounds");
        &self.data[start * self.cols..end * self.cols]
    }

    /// Returns a new matrix consisting of the selected rows, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds or `indices` is empty.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        assert!(!indices.is_empty(), "select_rows requires at least one row");
        let mut m = Matrix::zero(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            assert!(src < self.rows, "row index out of bounds");
            for c in 0..self.cols {
                m[(dst, c)] = self[(src, c)];
            }
        }
        m
    }

    /// Vertically stacks `self` on top of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::DimensionMismatch`] if the column counts differ.
    pub fn stack(&self, other: &Matrix) -> Result<Matrix, GfError> {
        if self.cols != other.cols {
            return Err(GfError::DimensionMismatch {
                expected: format!("{} columns", self.cols),
                found: format!("{} columns", other.cols),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Multiplies `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::DimensionMismatch`] if the inner dimensions differ.
    pub fn checked_mul(&self, rhs: &Matrix) -> Result<Matrix, GfError> {
        if self.cols != rhs.rows {
            return Err(GfError::DimensionMismatch {
                expected: format!("rhs with {} rows", self.cols),
                found: format!("rhs with {} rows", rhs.rows),
            });
        }
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a.is_zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Multiplies the matrix by a column vector.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::DimensionMismatch`] if `vec.len() != self.cols()`.
    pub fn mul_vec(&self, vec: &[Gf256]) -> Result<Vec<Gf256>, GfError> {
        if vec.len() != self.cols {
            return Err(GfError::DimensionMismatch {
                expected: format!("vector of length {}", self.cols),
                found: format!("vector of length {}", vec.len()),
            });
        }
        Ok(self
            .iter_rows()
            .map(|row| row.iter().zip(vec).map(|(a, b)| *a * *b).sum())
            .collect())
    }

    /// Returns the rank of the matrix (dimension of its row space).
    pub fn rank(&self) -> usize {
        let mut m = self.clone();
        let mut rank = 0;
        for col in 0..m.cols {
            if rank == m.rows {
                break;
            }
            // Find a pivot in this column at or below `rank`.
            let Some(pivot) = (rank..m.rows).find(|&r| !m[(r, col)].is_zero()) else {
                continue;
            };
            m.swap_rows(rank, pivot);
            let inv = m[(rank, col)].inv();
            for c in 0..m.cols {
                m[(rank, c)] *= inv;
            }
            for r in 0..m.rows {
                if r != rank && !m[(r, col)].is_zero() {
                    let factor = m[(r, col)];
                    for c in 0..m.cols {
                        let v = m[(rank, c)];
                        m[(r, c)] += factor * v;
                    }
                }
            }
            rank += 1;
        }
        rank
    }

    /// Returns `true` if the matrix is square and invertible.
    pub fn is_invertible(&self) -> bool {
        self.rows == self.cols && self.rank() == self.rows
    }

    /// Computes the inverse of a square matrix by Gauss–Jordan elimination.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::DimensionMismatch`] if the matrix is not square, or
    /// [`GfError::SingularMatrix`] if it has no inverse.
    pub fn inverse(&self) -> Result<Matrix, GfError> {
        if self.rows != self.cols {
            return Err(GfError::DimensionMismatch {
                expected: "square matrix".to_string(),
                found: format!("{}x{}", self.rows, self.cols),
            });
        }
        let n = self.rows;
        let mut work = self.clone();
        let mut inv = Matrix::identity(n);

        for col in 0..n {
            let Some(pivot) = (col..n).find(|&r| !work[(r, col)].is_zero()) else {
                return Err(GfError::SingularMatrix);
            };
            work.swap_rows(col, pivot);
            inv.swap_rows(col, pivot);

            let scale = work[(col, col)].inv();
            for c in 0..n {
                work[(col, c)] *= scale;
                inv[(col, c)] *= scale;
            }
            for r in 0..n {
                if r != col && !work[(r, col)].is_zero() {
                    let factor = work[(r, col)];
                    for c in 0..n {
                        let w = work[(col, c)];
                        let i = inv[(col, c)];
                        work[(r, c)] += factor * w;
                        inv[(r, c)] += factor * i;
                    }
                }
            }
        }
        Ok(inv)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = Gf256;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Gf256 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Gf256 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.checked_mul(rhs)
            // drc-lint: allow(panic-hygiene): operator `Mul` cannot return Result;
            // `checked_mul` is the fallible surface for dimension mismatches.
            .expect("matrix dimension mismatch in multiplication")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in self.iter_rows() {
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:02x}", v.value())?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_identity() {
        let v = Matrix::vandermonde(4, 4).unwrap();
        let id = Matrix::identity(4);
        assert_eq!(&v * &id, v);
        assert_eq!(&id * &v, v);
    }

    #[test]
    fn vandermonde_shape_and_first_rows() {
        let v = Matrix::vandermonde(3, 4).unwrap();
        assert_eq!(v.rows(), 3);
        assert_eq!(v.cols(), 4);
        // Row 0: 0^0, 0^1, ... = 1, 0, 0, 0
        assert_eq!(
            v.row(0),
            &[Gf256::ONE, Gf256::ZERO, Gf256::ZERO, Gf256::ZERO]
        );
        // Row 1: all ones.
        assert!(v.row(1).iter().all(|x| *x == Gf256::ONE));
    }

    #[test]
    fn vandermonde_rejects_bad_dims() {
        assert!(Matrix::vandermonde(0, 3).is_err());
        assert!(Matrix::vandermonde(3, 0).is_err());
        assert!(Matrix::vandermonde(257, 3).is_err());
    }

    #[test]
    fn cauchy_square_submatrices_invertible() {
        let c = Matrix::cauchy(3, 5).unwrap();
        assert_eq!(c.rows(), 3);
        assert_eq!(c.cols(), 5);
        // Any 3 columns form an invertible 3x3 matrix. Spot-check a few.
        for cols in [[0usize, 1, 2], [0, 3, 4], [1, 2, 4]] {
            let mut sub = Matrix::zero(3, 3);
            for r in 0..3 {
                for (j, &col) in cols.iter().enumerate() {
                    sub[(r, j)] = c[(r, col)];
                }
            }
            assert!(
                sub.is_invertible(),
                "cauchy submatrix {cols:?} not invertible"
            );
        }
    }

    #[test]
    fn cauchy_rejects_bad_dims() {
        assert!(Matrix::cauchy(0, 4).is_err());
        assert!(Matrix::cauchy(4, 0).is_err());
        assert!(Matrix::cauchy(200, 100).is_err());
    }

    #[test]
    fn from_rows_validation() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[vec![1, 2], vec![3]]).is_err());
        let m = Matrix::from_rows(&[vec![1, 2], vec![3, 4]]).unwrap();
        assert_eq!(m[(1, 0)], Gf256::new(3));
    }

    #[test]
    fn inverse_roundtrip_vandermonde() {
        for n in 1..=8 {
            let rows: Vec<usize> = (0..n).collect();
            let v = Matrix::vandermonde(12, n).unwrap().select_rows(&rows);
            let inv = v.inverse().unwrap();
            assert_eq!(&v * &inv, Matrix::identity(n));
            assert_eq!(&inv * &v, Matrix::identity(n));
        }
    }

    #[test]
    fn singular_matrix_detected() {
        let m = Matrix::from_rows(&[vec![1, 2, 3], vec![1, 2, 3], vec![0, 1, 0]]).unwrap();
        assert_eq!(m.inverse(), Err(GfError::SingularMatrix));
        assert_eq!(m.rank(), 2);
        assert!(!m.is_invertible());
    }

    #[test]
    fn non_square_inverse_rejected() {
        let m = Matrix::zero(2, 3);
        assert!(matches!(
            m.inverse(),
            Err(GfError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rank_of_identity_and_zero() {
        assert_eq!(Matrix::identity(5).rank(), 5);
        assert_eq!(Matrix::zero(4, 6).rank(), 0);
    }

    #[test]
    fn mul_vec_matches_matrix_mul() {
        let m = Matrix::vandermonde(3, 3).unwrap();
        let v = [Gf256::new(7), Gf256::new(11), Gf256::new(13)];
        let got = m.mul_vec(&v).unwrap();
        for i in 0..3 {
            let expect: Gf256 = (0..3).map(|j| m[(i, j)] * v[j]).sum();
            assert_eq!(got[i], expect);
        }
        assert!(m.mul_vec(&v[..2]).is_err());
    }

    #[test]
    fn select_rows_and_stack() {
        let id = Matrix::identity(3);
        let v = Matrix::vandermonde(2, 3).unwrap();
        let stacked = id.stack(&v).unwrap();
        assert_eq!(stacked.rows(), 5);
        let picked = stacked.select_rows(&[0, 3, 4]);
        assert_eq!(picked.row(0), id.row(0));
        assert_eq!(picked.row(1), v.row(0));
        assert!(id.stack(&Matrix::zero(1, 2)).is_err());
    }

    #[test]
    fn checked_mul_dimension_errors() {
        let a = Matrix::zero(2, 3);
        let b = Matrix::zero(2, 3);
        assert!(a.checked_mul(&b).is_err());
    }

    #[test]
    fn display_formats_all_entries() {
        let m = Matrix::identity(2);
        let s = m.to_string();
        assert_eq!(s, "01 00\n00 01\n");
    }
}
