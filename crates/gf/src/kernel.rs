//! Runtime-dispatched bulk kernels for GF(2^8) slice operations.
//!
//! # Design
//!
//! A [`Kernel`] is a named bundle of three function pointers — bulk XOR,
//! bulk scalar multiply, and fused multiply-accumulate — that every public
//! operation in [`crate::slice`] is built from. Implementations:
//!
//! | name | lane width | technique | available |
//! |---|---|---|---|
//! | `gfni` | 64 B | `gf2p8affineqb` with per-coefficient 8×8 bit-matrices | x86-64 with GFNI + AVX-512F |
//! | `vbmi` | 64 B | split-nibble `vpermb` table lookups | x86-64 with AVX-512VBMI |
//! | `avx2` | 32 B | split-nibble `vpshufb` table lookups | x86-64 with AVX2 |
//! | `ssse3` | 16 B | split-nibble `pshufb` table lookups | x86-64 with SSSE3 |
//! | `neon` | 16 B | split-nibble `tbl` lookups | aarch64 (always) |
//! | `wide` | 8 B xor / 1 B mul | `u64` XOR lanes + per-coefficient 256-byte product row | everywhere |
//! | `reference` | 1 B | branch-free log/antilog scalar | everywhere |
//!
//! The dispatch tier order is `gfni > vbmi > avx2 > ssse3 > wide >
//! reference` (`neon` slots between `ssse3` and `wide` on aarch64): the GFNI
//! kernel computes a whole 64-byte product in **one** `gf2p8affineqb`
//! instruction — constant-multiplication in GF(2^8) is GF(2)-linear, so it
//! is an 8×8 bit-matrix applied per byte, which also side-steps
//! `gf2p8mulb`'s hard-wired AES polynomial (0x11b, not our 0x11d) — while
//! the VBMI kernel is the familiar split-nibble lookup widened to 64-byte
//! lanes via `vpermb`.
//!
//! [`active`] picks the widest kernel the CPU supports **once** (cached in an
//! atomic) so steady-state dispatch is a single relaxed load plus an indirect
//! call per bulk operation — amortised over whole blocks, not per byte. The
//! `DRC_GF_KERNEL` environment variable
//! (`gfni|vbmi|avx2|ssse3|neon|wide|reference`) pins the choice for
//! benchmarks and differential tests; a name that no kernel runnable on this
//! host carries falls back to auto-detection **with a one-time stderr
//! warning** naming the valid set, so a typo cannot silently benchmark the
//! wrong kernel. [`all`] lists every kernel the host can run, which the
//! proptests use to verify byte-for-byte agreement and the benches use for
//! per-variant throughput curves; [`with_forced`] pins the active kernel for
//! a closure (bench/test hook).
//!
//! The sibling knob `DRC_SIM_THREADS` controls the *worker-pool width* the
//! bulk [`crate::slice`] operations split block-sized work across (default:
//! all cores; `1` forces the serial, allocation-free path). The two are
//! orthogonal: every `(kernel, thread-count)` combination produces
//! byte-identical results.
//!
//! # Safety
//!
//! This is the only module in the crate allowed to use `unsafe`, and every
//! unsafe block is one of exactly two shapes:
//!
//! 1. **ISA intrinsics behind verified CPU support.** The `target_feature`
//!    functions (`*_gfni`, `*_vbmi`, `*_avx512`, `*_avx2`, `*_ssse3`) are
//!    only ever reachable through a [`Kernel`] whose constructor site is
//!    guarded by `is_x86_feature_detected!`; the NEON path compiles only on
//!    aarch64 where NEON is part of the baseline ISA. Calling them is
//!    therefore never UB by reason of unsupported instructions.
//! 2. **Unaligned loads/stores inside bounds.** All pointer arithmetic walks
//!    `chunks_exact`-style over ranges `i * LANE .. (i + 1) * LANE` with
//!    `i < len / LANE`, so every access is in-bounds, and the `loadu`/
//!    `storeu` (or `vld1q`/`vst1q`) forms have no alignment requirement.
//!    Residual tails are handled with safe scalar code.
//!
//! The wrappers additionally `assert_eq!` slice lengths *before* entering
//! unsafe code, so the invariants above hold for any caller input.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicPtr, Ordering};

use crate::tables::TABLES;

/// A bundle of bulk GF(2^8) kernels sharing one implementation technique.
///
/// All functions require `dst.len() == src.len()`; the safe wrappers in
/// [`crate::slice`] check this before dispatch.
pub struct Kernel {
    name: &'static str,
    xor_assign: fn(&mut [u8], &[u8]),
    scale_assign: fn(&mut [u8], u8),
    mul_acc: fn(&mut [u8], &[u8], u8),
}

impl Kernel {
    /// The kernel's name (`gfni`, `vbmi`, `avx2`, `ssse3`, `neon`, `wide`
    /// or `reference`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// `dst[i] ^= src[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    #[inline]
    pub fn xor_assign(&self, dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len(), "xor_assign requires equal lengths");
        (self.xor_assign)(dst, src);
    }

    /// `dst[i] = coeff · dst[i]`.
    #[inline]
    pub fn scale_assign(&self, dst: &mut [u8], coeff: u8) {
        (self.scale_assign)(dst, coeff);
    }

    /// `dst[i] ^= coeff · src[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    #[inline]
    pub fn mul_acc(&self, dst: &mut [u8], src: &[u8], coeff: u8) {
        assert_eq!(dst.len(), src.len(), "mul_acc requires equal lengths");
        (self.mul_acc)(dst, src, coeff);
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel").field("name", &self.name).finish()
    }
}

// ---------------------------------------------------------------------------
// Reference kernel: branch-free scalar log/antilog.
// ---------------------------------------------------------------------------

fn xor_assign_scalar(dst: &mut [u8], src: &[u8]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= *s;
    }
}

fn scale_assign_reference(dst: &mut [u8], coeff: u8) {
    let log_c = TABLES.log[coeff as usize] as usize;
    for d in dst.iter_mut() {
        *d = TABLES.exp[log_c + TABLES.log[*d as usize] as usize];
    }
}

fn mul_acc_reference(dst: &mut [u8], src: &[u8], coeff: u8) {
    let log_c = TABLES.log[coeff as usize] as usize;
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= TABLES.exp[log_c + TABLES.log[*s as usize] as usize];
    }
}

static REFERENCE: Kernel = Kernel {
    name: "reference",
    xor_assign: xor_assign_scalar,
    scale_assign: scale_assign_reference,
    mul_acc: mul_acc_reference,
};

// ---------------------------------------------------------------------------
// Wide portable kernel: u64 XOR lanes + per-coefficient product row.
// ---------------------------------------------------------------------------

fn xor_assign_wide(dst: &mut [u8], src: &[u8]) {
    // drc-lint: allow(panic-hygiene): chunks_exact(8) hands out exactly
    // 8-byte slices, so the slice-to-array conversion cannot fail.
    let word = |b: &[u8]| u64::from_ne_bytes(b.try_into().expect("8-byte chunk"));
    let mut d8 = dst.chunks_exact_mut(8);
    let mut s8 = src.chunks_exact(8);
    for (d, s) in d8.by_ref().zip(s8.by_ref()) {
        let x = word(d) ^ word(s);
        d.copy_from_slice(&x.to_ne_bytes());
    }
    for (d, s) in d8.into_remainder().iter_mut().zip(s8.remainder()) {
        *d ^= *s;
    }
}

fn scale_assign_wide(dst: &mut [u8], coeff: u8) {
    let row = &TABLES.mul[coeff as usize];
    for d in dst.iter_mut() {
        *d = row[*d as usize];
    }
}

fn mul_acc_wide(dst: &mut [u8], src: &[u8], coeff: u8) {
    let row = &TABLES.mul[coeff as usize];
    let mut chunks_d = dst.chunks_exact_mut(8);
    let mut chunks_s = src.chunks_exact(8);
    for (d, s) in chunks_d.by_ref().zip(chunks_s.by_ref()) {
        // Manually unrolled: one table load per byte, no log/antilog math.
        d[0] ^= row[s[0] as usize];
        d[1] ^= row[s[1] as usize];
        d[2] ^= row[s[2] as usize];
        d[3] ^= row[s[3] as usize];
        d[4] ^= row[s[4] as usize];
        d[5] ^= row[s[5] as usize];
        d[6] ^= row[s[6] as usize];
        d[7] ^= row[s[7] as usize];
    }
    for (d, s) in chunks_d
        .into_remainder()
        .iter_mut()
        .zip(chunks_s.remainder())
    {
        *d ^= row[*s as usize];
    }
}

static WIDE: Kernel = Kernel {
    name: "wide",
    xor_assign: xor_assign_wide,
    scale_assign: scale_assign_wide,
    mul_acc: mul_acc_wide,
};

// ---------------------------------------------------------------------------
// x86-64 SIMD kernels: split-nibble pshufb.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;
    use std::arch::x86_64::*;

    /// # Safety
    ///
    /// Caller must ensure SSSE3 is available and `dst.len() == src.len()`.
    #[target_feature(enable = "ssse3")]
    unsafe fn mul_acc_ssse3_impl(dst: &mut [u8], src: &[u8], coeff: u8) {
        // SAFETY: the caller upholds this fn's `# Safety` contract (the
        // required CPU feature is enabled, lengths match); all pointer
        // arithmetic below stays inside the slices' bounds.
        unsafe {
            let lo_tbl = _mm_loadu_si128(TABLES.nib_lo[coeff as usize].as_ptr() as *const __m128i);
            let hi_tbl = _mm_loadu_si128(TABLES.nib_hi[coeff as usize].as_ptr() as *const __m128i);
            let mask = _mm_set1_epi8(0x0f);
            let lanes = dst.len() / 16;
            let d_ptr = dst.as_mut_ptr();
            let s_ptr = src.as_ptr();
            for i in 0..lanes {
                let s = _mm_loadu_si128(s_ptr.add(i * 16) as *const __m128i);
                let lo = _mm_and_si128(s, mask);
                let hi = _mm_and_si128(_mm_srli_epi64(s, 4), mask);
                let prod =
                    _mm_xor_si128(_mm_shuffle_epi8(lo_tbl, lo), _mm_shuffle_epi8(hi_tbl, hi));
                let d = _mm_loadu_si128(d_ptr.add(i * 16) as *const __m128i);
                _mm_storeu_si128(d_ptr.add(i * 16) as *mut __m128i, _mm_xor_si128(d, prod));
            }
            mul_acc_wide(&mut dst[lanes * 16..], &src[lanes * 16..], coeff);
        }
    }

    /// # Safety
    ///
    /// Caller must ensure SSSE3 is available and `dst.len() == src.len()`.
    #[target_feature(enable = "ssse3")]
    unsafe fn scale_assign_ssse3_impl(dst: &mut [u8], coeff: u8) {
        // SAFETY: the caller upholds this fn's `# Safety` contract (the
        // required CPU feature is enabled, lengths match); all pointer
        // arithmetic below stays inside the slices' bounds.
        unsafe {
            let lo_tbl = _mm_loadu_si128(TABLES.nib_lo[coeff as usize].as_ptr() as *const __m128i);
            let hi_tbl = _mm_loadu_si128(TABLES.nib_hi[coeff as usize].as_ptr() as *const __m128i);
            let mask = _mm_set1_epi8(0x0f);
            let lanes = dst.len() / 16;
            let d_ptr = dst.as_mut_ptr();
            for i in 0..lanes {
                let d = _mm_loadu_si128(d_ptr.add(i * 16) as *const __m128i);
                let lo = _mm_and_si128(d, mask);
                let hi = _mm_and_si128(_mm_srli_epi64(d, 4), mask);
                let prod =
                    _mm_xor_si128(_mm_shuffle_epi8(lo_tbl, lo), _mm_shuffle_epi8(hi_tbl, hi));
                _mm_storeu_si128(d_ptr.add(i * 16) as *mut __m128i, prod);
            }
            scale_assign_wide(&mut dst[lanes * 16..], coeff);
        }
    }

    fn mul_acc_ssse3(dst: &mut [u8], src: &[u8], coeff: u8) {
        // SAFETY: this kernel is only registered after
        // `is_x86_feature_detected!("ssse3")`; lengths checked by the wrapper.
        unsafe { mul_acc_ssse3_impl(dst, src, coeff) }
    }

    fn scale_assign_ssse3(dst: &mut [u8], coeff: u8) {
        // SAFETY: as above.
        unsafe { scale_assign_ssse3_impl(dst, coeff) }
    }

    pub(super) static SSSE3: Kernel = Kernel {
        name: "ssse3",
        xor_assign: xor_assign_wide,
        scale_assign: scale_assign_ssse3,
        mul_acc: mul_acc_ssse3,
    };

    /// # Safety
    ///
    /// Caller must ensure AVX2 is available and `dst.len() == src.len()`.
    #[target_feature(enable = "avx2")]
    unsafe fn mul_acc_avx2_impl(dst: &mut [u8], src: &[u8], coeff: u8) {
        // SAFETY: the caller upholds this fn's `# Safety` contract (the
        // required CPU feature is enabled, lengths match); all pointer
        // arithmetic below stays inside the slices' bounds.
        unsafe {
            let lo_tbl = _mm256_broadcastsi128_si256(_mm_loadu_si128(
                TABLES.nib_lo[coeff as usize].as_ptr() as *const __m128i,
            ));
            let hi_tbl = _mm256_broadcastsi128_si256(_mm_loadu_si128(
                TABLES.nib_hi[coeff as usize].as_ptr() as *const __m128i,
            ));
            let mask = _mm256_set1_epi8(0x0f);
            let lanes = dst.len() / 32;
            let d_ptr = dst.as_mut_ptr();
            let s_ptr = src.as_ptr();
            for i in 0..lanes {
                let s = _mm256_loadu_si256(s_ptr.add(i * 32) as *const __m256i);
                let lo = _mm256_and_si256(s, mask);
                let hi = _mm256_and_si256(_mm256_srli_epi64(s, 4), mask);
                let prod = _mm256_xor_si256(
                    _mm256_shuffle_epi8(lo_tbl, lo),
                    _mm256_shuffle_epi8(hi_tbl, hi),
                );
                let d = _mm256_loadu_si256(d_ptr.add(i * 32) as *const __m256i);
                _mm256_storeu_si256(d_ptr.add(i * 32) as *mut __m256i, _mm256_xor_si256(d, prod));
            }
            mul_acc_wide(&mut dst[lanes * 32..], &src[lanes * 32..], coeff);
        }
    }

    /// # Safety
    ///
    /// Caller must ensure AVX2 is available and `dst.len() == src.len()`.
    #[target_feature(enable = "avx2")]
    unsafe fn scale_assign_avx2_impl(dst: &mut [u8], coeff: u8) {
        // SAFETY: the caller upholds this fn's `# Safety` contract (the
        // required CPU feature is enabled, lengths match); all pointer
        // arithmetic below stays inside the slices' bounds.
        unsafe {
            let lo_tbl = _mm256_broadcastsi128_si256(_mm_loadu_si128(
                TABLES.nib_lo[coeff as usize].as_ptr() as *const __m128i,
            ));
            let hi_tbl = _mm256_broadcastsi128_si256(_mm_loadu_si128(
                TABLES.nib_hi[coeff as usize].as_ptr() as *const __m128i,
            ));
            let mask = _mm256_set1_epi8(0x0f);
            let lanes = dst.len() / 32;
            let d_ptr = dst.as_mut_ptr();
            for i in 0..lanes {
                let d = _mm256_loadu_si256(d_ptr.add(i * 32) as *const __m256i);
                let lo = _mm256_and_si256(d, mask);
                let hi = _mm256_and_si256(_mm256_srli_epi64(d, 4), mask);
                let prod = _mm256_xor_si256(
                    _mm256_shuffle_epi8(lo_tbl, lo),
                    _mm256_shuffle_epi8(hi_tbl, hi),
                );
                _mm256_storeu_si256(d_ptr.add(i * 32) as *mut __m256i, prod);
            }
            scale_assign_wide(&mut dst[lanes * 32..], coeff);
        }
    }

    /// # Safety
    ///
    /// Caller must ensure AVX2 is available and `dst.len() == src.len()`.
    #[target_feature(enable = "avx2")]
    unsafe fn xor_assign_avx2_impl(dst: &mut [u8], src: &[u8]) {
        // SAFETY: the caller upholds this fn's `# Safety` contract (the
        // required CPU feature is enabled, lengths match); all pointer
        // arithmetic below stays inside the slices' bounds.
        unsafe {
            let lanes = dst.len() / 32;
            let d_ptr = dst.as_mut_ptr();
            let s_ptr = src.as_ptr();
            for i in 0..lanes {
                let s = _mm256_loadu_si256(s_ptr.add(i * 32) as *const __m256i);
                let d = _mm256_loadu_si256(d_ptr.add(i * 32) as *const __m256i);
                _mm256_storeu_si256(d_ptr.add(i * 32) as *mut __m256i, _mm256_xor_si256(d, s));
            }
            xor_assign_wide(&mut dst[lanes * 32..], &src[lanes * 32..]);
        }
    }

    fn mul_acc_avx2(dst: &mut [u8], src: &[u8], coeff: u8) {
        // SAFETY: this kernel is only registered after
        // `is_x86_feature_detected!("avx2")`; lengths checked by the wrapper.
        unsafe { mul_acc_avx2_impl(dst, src, coeff) }
    }

    fn scale_assign_avx2(dst: &mut [u8], coeff: u8) {
        // SAFETY: as above.
        unsafe { scale_assign_avx2_impl(dst, coeff) }
    }

    fn xor_assign_avx2(dst: &mut [u8], src: &[u8]) {
        // SAFETY: as above.
        unsafe { xor_assign_avx2_impl(dst, src) }
    }

    pub(super) static AVX2: Kernel = Kernel {
        name: "avx2",
        xor_assign: xor_assign_avx2,
        scale_assign: scale_assign_avx2,
        mul_acc: mul_acc_avx2,
    };

    // -----------------------------------------------------------------------
    // AVX-512 tiers: 64-byte lanes.
    //
    // `gfni` applies the per-coefficient 8×8 bit-matrix from `TABLES.gfni`
    // with one `gf2p8affineqb` per lane (the matrix route is mandatory: the
    // dedicated `gf2p8mulb` multiplier is hard-wired to the AES polynomial
    // 0x11b, not this field's 0x11d). `vbmi` is the split-nibble lookup
    // widened to 64 bytes with `vpermb`; the nibble values are < 16, so the
    // 16-entry tables broadcast into a zmm serve as 64-entry `vpermb` tables
    // whose upper replicas are simply never distinguished.
    // -----------------------------------------------------------------------

    /// # Safety
    ///
    /// Caller must ensure AVX-512F is available and `dst.len() == src.len()`.
    #[target_feature(enable = "avx512f")]
    unsafe fn xor_assign_avx512_impl(dst: &mut [u8], src: &[u8]) {
        // SAFETY: the caller upholds this fn's `# Safety` contract (the
        // required CPU feature is enabled, lengths match); all pointer
        // arithmetic below stays inside the slices' bounds.
        unsafe {
            let lanes = dst.len() / 64;
            let d_ptr = dst.as_mut_ptr();
            let s_ptr = src.as_ptr();
            for i in 0..lanes {
                let s = _mm512_loadu_si512(s_ptr.add(i * 64) as *const _);
                let d = _mm512_loadu_si512(d_ptr.add(i * 64) as *const _);
                _mm512_storeu_si512(d_ptr.add(i * 64) as *mut _, _mm512_xor_si512(d, s));
            }
            xor_assign_wide(&mut dst[lanes * 64..], &src[lanes * 64..]);
        }
    }

    /// # Safety
    ///
    /// Caller must ensure GFNI + AVX-512F are available and
    /// `dst.len() == src.len()`.
    #[target_feature(enable = "gfni,avx512f")]
    unsafe fn mul_acc_gfni_impl(dst: &mut [u8], src: &[u8], coeff: u8) {
        // SAFETY: the caller upholds this fn's `# Safety` contract (the
        // required CPU feature is enabled, lengths match); all pointer
        // arithmetic below stays inside the slices' bounds.
        unsafe {
            let mat = _mm512_set1_epi64(TABLES.gfni[coeff as usize] as i64);
            let lanes = dst.len() / 64;
            let d_ptr = dst.as_mut_ptr();
            let s_ptr = src.as_ptr();
            for i in 0..lanes {
                let s = _mm512_loadu_si512(s_ptr.add(i * 64) as *const _);
                let prod = _mm512_gf2p8affine_epi64_epi8::<0>(s, mat);
                let d = _mm512_loadu_si512(d_ptr.add(i * 64) as *const _);
                _mm512_storeu_si512(d_ptr.add(i * 64) as *mut _, _mm512_xor_si512(d, prod));
            }
            mul_acc_wide(&mut dst[lanes * 64..], &src[lanes * 64..], coeff);
        }
    }

    /// # Safety
    ///
    /// Caller must ensure GFNI + AVX-512F are available.
    #[target_feature(enable = "gfni,avx512f")]
    unsafe fn scale_assign_gfni_impl(dst: &mut [u8], coeff: u8) {
        // SAFETY: the caller upholds this fn's `# Safety` contract (the
        // required CPU feature is enabled, lengths match); all pointer
        // arithmetic below stays inside the slices' bounds.
        unsafe {
            let mat = _mm512_set1_epi64(TABLES.gfni[coeff as usize] as i64);
            let lanes = dst.len() / 64;
            let d_ptr = dst.as_mut_ptr();
            for i in 0..lanes {
                let d = _mm512_loadu_si512(d_ptr.add(i * 64) as *const _);
                let prod = _mm512_gf2p8affine_epi64_epi8::<0>(d, mat);
                _mm512_storeu_si512(d_ptr.add(i * 64) as *mut _, prod);
            }
            scale_assign_wide(&mut dst[lanes * 64..], coeff);
        }
    }

    fn mul_acc_gfni(dst: &mut [u8], src: &[u8], coeff: u8) {
        // SAFETY: this kernel is only registered after
        // `is_x86_feature_detected!("gfni")` + `("avx512f")`; lengths
        // checked by the wrapper.
        unsafe { mul_acc_gfni_impl(dst, src, coeff) }
    }

    fn scale_assign_gfni(dst: &mut [u8], coeff: u8) {
        // SAFETY: as above.
        unsafe { scale_assign_gfni_impl(dst, coeff) }
    }

    fn xor_assign_avx512(dst: &mut [u8], src: &[u8]) {
        // SAFETY: both registration sites (gfni, vbmi) verify avx512f;
        // lengths checked by the wrapper.
        unsafe { xor_assign_avx512_impl(dst, src) }
    }

    pub(super) static GFNI: Kernel = Kernel {
        name: "gfni",
        xor_assign: xor_assign_avx512,
        scale_assign: scale_assign_gfni,
        mul_acc: mul_acc_gfni,
    };

    /// # Safety
    ///
    /// Caller must ensure AVX-512VBMI + AVX-512F are available and
    /// `dst.len() == src.len()`.
    #[target_feature(enable = "avx512vbmi,avx512f")]
    unsafe fn mul_acc_vbmi_impl(dst: &mut [u8], src: &[u8], coeff: u8) {
        // SAFETY: the caller upholds this fn's `# Safety` contract (the
        // required CPU feature is enabled, lengths match); all pointer
        // arithmetic below stays inside the slices' bounds.
        unsafe {
            let lo_tbl = _mm512_broadcast_i32x4(_mm_loadu_si128(
                TABLES.nib_lo[coeff as usize].as_ptr() as *const __m128i,
            ));
            let hi_tbl = _mm512_broadcast_i32x4(_mm_loadu_si128(
                TABLES.nib_hi[coeff as usize].as_ptr() as *const __m128i,
            ));
            let mask = _mm512_set1_epi8(0x0f);
            let lanes = dst.len() / 64;
            let d_ptr = dst.as_mut_ptr();
            let s_ptr = src.as_ptr();
            for i in 0..lanes {
                let s = _mm512_loadu_si512(s_ptr.add(i * 64) as *const _);
                let lo = _mm512_and_si512(s, mask);
                let hi = _mm512_and_si512(_mm512_srli_epi64::<4>(s), mask);
                let prod = _mm512_xor_si512(
                    _mm512_permutexvar_epi8(lo, lo_tbl),
                    _mm512_permutexvar_epi8(hi, hi_tbl),
                );
                let d = _mm512_loadu_si512(d_ptr.add(i * 64) as *const _);
                _mm512_storeu_si512(d_ptr.add(i * 64) as *mut _, _mm512_xor_si512(d, prod));
            }
            mul_acc_wide(&mut dst[lanes * 64..], &src[lanes * 64..], coeff);
        }
    }

    /// # Safety
    ///
    /// Caller must ensure AVX-512VBMI + AVX-512F are available.
    #[target_feature(enable = "avx512vbmi,avx512f")]
    unsafe fn scale_assign_vbmi_impl(dst: &mut [u8], coeff: u8) {
        // SAFETY: the caller upholds this fn's `# Safety` contract (the
        // required CPU feature is enabled, lengths match); all pointer
        // arithmetic below stays inside the slices' bounds.
        unsafe {
            let lo_tbl = _mm512_broadcast_i32x4(_mm_loadu_si128(
                TABLES.nib_lo[coeff as usize].as_ptr() as *const __m128i,
            ));
            let hi_tbl = _mm512_broadcast_i32x4(_mm_loadu_si128(
                TABLES.nib_hi[coeff as usize].as_ptr() as *const __m128i,
            ));
            let mask = _mm512_set1_epi8(0x0f);
            let lanes = dst.len() / 64;
            let d_ptr = dst.as_mut_ptr();
            for i in 0..lanes {
                let d = _mm512_loadu_si512(d_ptr.add(i * 64) as *const _);
                let lo = _mm512_and_si512(d, mask);
                let hi = _mm512_and_si512(_mm512_srli_epi64::<4>(d), mask);
                let prod = _mm512_xor_si512(
                    _mm512_permutexvar_epi8(lo, lo_tbl),
                    _mm512_permutexvar_epi8(hi, hi_tbl),
                );
                _mm512_storeu_si512(d_ptr.add(i * 64) as *mut _, prod);
            }
            scale_assign_wide(&mut dst[lanes * 64..], coeff);
        }
    }

    fn mul_acc_vbmi(dst: &mut [u8], src: &[u8], coeff: u8) {
        // SAFETY: this kernel is only registered after
        // `is_x86_feature_detected!("avx512vbmi")` + `("avx512f")`; lengths
        // checked by the wrapper.
        unsafe { mul_acc_vbmi_impl(dst, src, coeff) }
    }

    fn scale_assign_vbmi(dst: &mut [u8], coeff: u8) {
        // SAFETY: as above.
        unsafe { scale_assign_vbmi_impl(dst, coeff) }
    }

    pub(super) static VBMI: Kernel = Kernel {
        name: "vbmi",
        xor_assign: xor_assign_avx512,
        scale_assign: scale_assign_vbmi,
        mul_acc: mul_acc_vbmi,
    };
}

// ---------------------------------------------------------------------------
// aarch64 NEON kernel: split-nibble tbl.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod arm {
    use super::*;
    use std::arch::aarch64::*;

    /// # Safety
    ///
    /// Caller must ensure `dst.len() == src.len()`. NEON is part of the
    /// aarch64 baseline, so no feature detection is required.
    unsafe fn mul_acc_neon_impl(dst: &mut [u8], src: &[u8], coeff: u8) {
        // SAFETY: the caller upholds this fn's `# Safety` contract (the
        // required CPU feature is enabled, lengths match); all pointer
        // arithmetic below stays inside the slices' bounds.
        unsafe {
            let lo_tbl = vld1q_u8(TABLES.nib_lo[coeff as usize].as_ptr());
            let hi_tbl = vld1q_u8(TABLES.nib_hi[coeff as usize].as_ptr());
            let mask = vdupq_n_u8(0x0f);
            let lanes = dst.len() / 16;
            let d_ptr = dst.as_mut_ptr();
            let s_ptr = src.as_ptr();
            for i in 0..lanes {
                let s = vld1q_u8(s_ptr.add(i * 16));
                let lo = vandq_u8(s, mask);
                let hi = vshrq_n_u8(s, 4);
                let prod = veorq_u8(vqtbl1q_u8(lo_tbl, lo), vqtbl1q_u8(hi_tbl, hi));
                let d = vld1q_u8(d_ptr.add(i * 16));
                vst1q_u8(d_ptr.add(i * 16), veorq_u8(d, prod));
            }
            mul_acc_wide(&mut dst[lanes * 16..], &src[lanes * 16..], coeff);
        }
    }

    /// # Safety
    ///
    /// Caller must ensure `dst.len() == src.len()` (NEON is baseline).
    unsafe fn scale_assign_neon_impl(dst: &mut [u8], coeff: u8) {
        // SAFETY: the caller upholds this fn's `# Safety` contract (the
        // required CPU feature is enabled, lengths match); all pointer
        // arithmetic below stays inside the slices' bounds.
        unsafe {
            let lo_tbl = vld1q_u8(TABLES.nib_lo[coeff as usize].as_ptr());
            let hi_tbl = vld1q_u8(TABLES.nib_hi[coeff as usize].as_ptr());
            let mask = vdupq_n_u8(0x0f);
            let lanes = dst.len() / 16;
            let d_ptr = dst.as_mut_ptr();
            for i in 0..lanes {
                let d = vld1q_u8(d_ptr.add(i * 16));
                let lo = vandq_u8(d, mask);
                let hi = vshrq_n_u8(d, 4);
                let prod = veorq_u8(vqtbl1q_u8(lo_tbl, lo), vqtbl1q_u8(hi_tbl, hi));
                vst1q_u8(d_ptr.add(i * 16), prod);
            }
            scale_assign_wide(&mut dst[lanes * 16..], coeff);
        }
    }

    fn mul_acc_neon(dst: &mut [u8], src: &[u8], coeff: u8) {
        // SAFETY: NEON is baseline on aarch64; lengths checked by the wrapper.
        unsafe { mul_acc_neon_impl(dst, src, coeff) }
    }

    fn scale_assign_neon(dst: &mut [u8], coeff: u8) {
        // SAFETY: as above.
        unsafe { scale_assign_neon_impl(dst, coeff) }
    }

    pub(super) static NEON: Kernel = Kernel {
        name: "neon",
        xor_assign: xor_assign_wide,
        scale_assign: scale_assign_neon,
        mul_acc: mul_acc_neon,
    };
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// Every kernel the current host can execute, widest first
/// (`gfni > vbmi > avx2 > ssse3 > wide > reference`; `neon` between `ssse3`
/// and `wide` on aarch64).
pub fn all() -> Vec<&'static Kernel> {
    let mut kernels: Vec<&'static Kernel> = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("gfni")
            && std::arch::is_x86_feature_detected!("avx512f")
        {
            kernels.push(&x86::GFNI);
        }
        if std::arch::is_x86_feature_detected!("avx512vbmi")
            && std::arch::is_x86_feature_detected!("avx512f")
        {
            kernels.push(&x86::VBMI);
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            kernels.push(&x86::AVX2);
        }
        if std::arch::is_x86_feature_detected!("ssse3") {
            kernels.push(&x86::SSSE3);
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        kernels.push(&arm::NEON);
    }
    kernels.push(&WIDE);
    kernels.push(&REFERENCE);
    kernels
}

/// The portable scalar kernel (differential-testing baseline).
pub fn reference() -> &'static Kernel {
    &REFERENCE
}

/// Looks up a host-runnable kernel by `DRC_GF_KERNEL` name.
fn find(name: &str) -> Option<&'static Kernel> {
    all().into_iter().find(|k| k.name() == name)
}

/// The message emitted when `DRC_GF_KERNEL` names no kernel runnable on
/// this host (factored out so tests can pin its contents).
fn unknown_kernel_warning(requested: &str) -> String {
    let valid: Vec<&'static str> = all().iter().map(|k| k.name()).collect();
    format!(
        "drc_gf: DRC_GF_KERNEL={requested:?} matches no kernel runnable on this host; \
         falling back to auto-detection ({}). Valid values here: {}.",
        all()[0].name(),
        valid.join(", ")
    )
}

fn select() -> &'static Kernel {
    if let Ok(name) = std::env::var("DRC_GF_KERNEL") {
        match find(&name) {
            Some(k) => return k,
            None => {
                // Warn exactly once: a typo'd benchmark run must not
                // silently measure the auto-detected kernel.
                static WARN_ONCE: std::sync::Once = std::sync::Once::new();
                WARN_ONCE.call_once(|| eprintln!("{}", unknown_kernel_warning(&name)));
            }
        }
    }
    all()[0]
}

static ACTIVE: AtomicPtr<Kernel> = AtomicPtr::new(std::ptr::null_mut());

/// The kernel used by [`crate::slice`]: the widest supported one, selected
/// once and cached.
pub fn active() -> &'static Kernel {
    let cached = ACTIVE.load(Ordering::Relaxed);
    if !cached.is_null() {
        // SAFETY: the pointer was stored from a `&'static Kernel` below or
        // in `with_forced`.
        return unsafe { &*cached };
    }
    let chosen = select();
    ACTIVE.store(chosen as *const Kernel as *mut Kernel, Ordering::Relaxed);
    chosen
}

/// Runs `f` with the **process-wide** active kernel pinned to `kern`,
/// restoring the previous selection on exit (including on panic).
///
/// Bench/test hook: because the pin is global rather than thread-local, work
/// the closure spreads across the worker pool also runs on `kern` — which is
/// exactly what per-kernel throughput measurements of the parallel
/// encode/reconstruct paths need. Do not race it against concurrent
/// measurements that care about *their* kernel choice.
pub fn with_forced<R>(kern: &'static Kernel, f: impl FnOnce() -> R) -> R {
    struct Restore(*mut Kernel);
    impl Drop for Restore {
        fn drop(&mut self) {
            ACTIVE.store(self.0, Ordering::Relaxed);
        }
    }
    let prev = ACTIVE.swap(kern as *const Kernel as *mut Kernel, Ordering::Relaxed);
    let _restore = Restore(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_order_is_widest_first() {
        let names: Vec<&str> = all().iter().map(|k| k.name()).collect();
        // The portable tail is always present and always last.
        assert_eq!(&names[names.len() - 2..], &["wide", "reference"]);
        // Relative tier order of whatever SIMD tiers the host offers.
        let tier = |n: &str| match n {
            "gfni" => 0,
            "vbmi" => 1,
            "avx2" => 2,
            "ssse3" => 3,
            "neon" => 4,
            "wide" => 5,
            "reference" => 6,
            other => panic!("unexpected kernel {other}"),
        };
        for pair in names.windows(2) {
            assert!(tier(pair[0]) < tier(pair[1]), "order violated: {names:?}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx512_tiers_register_on_supporting_hosts() {
        let names: Vec<&str> = all().iter().map(|k| k.name()).collect();
        if std::arch::is_x86_feature_detected!("gfni")
            && std::arch::is_x86_feature_detected!("avx512f")
        {
            assert_eq!(names[0], "gfni", "gfni host must dispatch-select gfni");
        }
        if std::arch::is_x86_feature_detected!("avx512vbmi")
            && std::arch::is_x86_feature_detected!("avx512f")
        {
            assert!(names.contains(&"vbmi"), "vbmi host must list vbmi");
        }
    }

    #[test]
    fn find_resolves_every_host_kernel_and_rejects_unknown() {
        for kern in all() {
            assert!(
                std::ptr::eq(find(kern.name()).expect("listed kernel resolves"), kern),
                "find({}) must return the listed kernel",
                kern.name()
            );
        }
        assert!(find("not-a-kernel").is_none());
        assert!(find("AVX2").is_none(), "names are case-sensitive");
    }

    #[test]
    fn unknown_override_warning_names_the_valid_set() {
        let msg = unknown_kernel_warning("avx512");
        assert!(msg.contains("DRC_GF_KERNEL=\"avx512\""), "{msg}");
        assert!(msg.contains("falling back to auto-detection"), "{msg}");
        for kern in all() {
            assert!(
                msg.contains(kern.name()),
                "warning must name {:?}: {msg}",
                kern.name()
            );
        }
    }

    #[test]
    fn with_forced_pins_and_restores() {
        let outer = active();
        let forced = reference();
        with_forced(forced, || {
            assert!(std::ptr::eq(active(), forced));
        });
        assert!(std::ptr::eq(active(), outer));
        // Restores even when the closure panics.
        let r = std::panic::catch_unwind(|| with_forced(forced, || panic!("boom")));
        assert!(r.is_err());
        assert!(std::ptr::eq(active(), outer));
    }
}
