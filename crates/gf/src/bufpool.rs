//! Process-wide free list of reusable block-sized byte buffers.
//!
//! The experiment layer runs many independent simulation cells back to back
//! (and, with the cell harness, in parallel); each cell writes, repairs and
//! drops files made of megabyte-scale blocks. Without reuse every cell
//! mallocs and frees gigabytes of 1 MiB buffers — page-fault churn that
//! dwarfs the arithmetic. This pool keeps the allocations alive between
//! cells: [`take`] hands out a zeroed buffer (recycled when one of matching
//! capacity is shelved, freshly allocated otherwise) and [`recycle`] shelves
//! an allocation for the next taker.
//!
//! # Determinism
//!
//! A recycled buffer is indistinguishable from a fresh one: [`take`] always
//! returns `len` zeroed bytes, so stale contents can never leak between
//! cells and simulation output is byte-identical whether a buffer was
//! pooled or not. Which allocation backs a buffer is the only thing that
//! varies (and races, under a parallel harness) — never the bytes.
//!
//! # Bounds
//!
//! Only buffers of at least [`MIN_POOLED_CAPACITY`] are pooled (small
//! vectors are cheap to allocate and would only churn the shelf), and the
//! shelf retains at most [`MAX_POOLED_BYTES`] in total — recycling beyond
//! the cap simply frees the buffer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Buffers with less capacity than this are never pooled.
pub const MIN_POOLED_CAPACITY: usize = 64 * 1024;

/// Total capacity the shelf may retain; recycling past it frees instead.
pub const MAX_POOLED_BYTES: usize = 512 * 1024 * 1024;

struct Shelf {
    bufs: Vec<Vec<u8>>,
    bytes: usize,
}

static SHELF: Mutex<Shelf> = Mutex::new(Shelf {
    bufs: Vec::new(),
    bytes: 0,
});
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn shelf() -> std::sync::MutexGuard<'static, Shelf> {
    SHELF.lock().unwrap_or_else(|e| e.into_inner())
}

/// Returns a buffer of exactly `len` zeroed bytes, reusing a shelved
/// allocation when one of sufficient capacity is available.
pub fn take(len: usize) -> Vec<u8> {
    let reused = if len >= MIN_POOLED_CAPACITY {
        let mut shelf = shelf();
        // Prefer the smallest shelved buffer that fits, so a small request
        // does not pin an oversized allocation.
        let mut best: Option<(usize, usize)> = None;
        for (i, b) in shelf.bufs.iter().enumerate() {
            let cap = b.capacity();
            if cap >= len && best.is_none_or(|(_, c)| cap < c) {
                best = Some((i, cap));
                if cap == len {
                    break;
                }
            }
        }
        best.map(|(i, _)| {
            let b = shelf.bufs.swap_remove(i);
            shelf.bytes -= b.capacity();
            b
        })
    } else {
        None
    };
    match reused {
        Some(mut b) => {
            HITS.fetch_add(1, Ordering::Relaxed);
            b.clear();
            b.resize(len, 0);
            b
        }
        None => {
            if len >= MIN_POOLED_CAPACITY {
                MISSES.fetch_add(1, Ordering::Relaxed);
            }
            vec![0u8; len]
        }
    }
}

/// Shelves an allocation for a later [`take`]. Buffers below
/// [`MIN_POOLED_CAPACITY`], or arriving once the shelf holds
/// [`MAX_POOLED_BYTES`], are simply dropped.
pub fn recycle(buf: Vec<u8>) {
    let cap = buf.capacity();
    if cap < MIN_POOLED_CAPACITY {
        return;
    }
    let mut shelf = shelf();
    if shelf.bytes + cap > MAX_POOLED_BYTES {
        return;
    }
    shelf.bytes += cap;
    shelf.bufs.push(buf);
}

/// Total capacity currently shelved.
pub fn pooled_bytes() -> usize {
    shelf().bytes
}

/// Number of [`take`] calls served from the shelf so far.
pub fn hits() -> u64 {
    HITS.load(Ordering::Relaxed)
}

/// Number of pool-eligible [`take`] calls that had to allocate fresh.
pub fn misses() -> u64 {
    MISSES.load(Ordering::Relaxed)
}

/// Frees every shelved buffer, returning how many bytes were released.
/// Intended for tests that want a cold pool.
pub fn drain() -> usize {
    let mut shelf = shelf();
    let freed = shelf.bytes;
    shelf.bufs.clear();
    shelf.bytes = 0;
    freed
}

#[cfg(test)]
mod tests {
    use super::*;

    // The pool is process-global and libtest runs tests on parallel
    // threads; serialize the tests so one test's take cannot steal the
    // buffer another just shelved.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn take_returns_zeroed_exact_length() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let len = MIN_POOLED_CAPACITY + 13;
        let mut a = take(len);
        assert_eq!(a.len(), len);
        assert!(a.iter().all(|&b| b == 0));
        a.iter_mut().for_each(|b| *b = 0xA5);
        recycle(a);
        let b = take(len);
        assert_eq!(b.len(), len);
        assert!(b.iter().all(|&x| x == 0), "recycled buffer must be zeroed");
    }

    #[test]
    fn small_buffers_are_not_pooled() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let before = pooled_bytes();
        recycle(vec![1u8; 16]);
        assert_eq!(pooled_bytes(), before);
        let misses_before = misses();
        let v = take(16);
        assert_eq!(v.len(), 16);
        assert_eq!(misses(), misses_before, "tiny takes are not pool-eligible");
    }

    #[test]
    fn recycle_then_take_is_a_hit() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let len = MIN_POOLED_CAPACITY * 2 + 7;
        recycle(vec![0u8; len]);
        let hits_before = hits();
        let v = take(len);
        assert_eq!(v.len(), len);
        assert!(
            hits() > hits_before,
            "a matching shelved buffer must be reused"
        );
    }
}
