//! Differential proptests for the shard-parallel paths: reconstruction and
//! encoding split across the worker pool must equal the single-threaded
//! result **byte-for-byte**, for every erasure pattern up to `r` losses.
//!
//! Buffers are sized past `slice::PAR_ENGAGE_MIN` with slack, so the
//! parallel split actually engages and the last range is a partial one (the
//! pool is pinned per-call via `rayon::with_num_threads`, so this holds
//! even on single-core hosts).

use proptest::prelude::*;

use drc_gf::{slice, Gf256, ReedSolomon};

/// All index subsets of `0..n` with at most `r` elements (including the
/// empty pattern — reconstruction with nothing missing must also agree).
fn erasure_patterns(n: usize, r: usize) -> Vec<Vec<usize>> {
    let mut patterns: Vec<Vec<usize>> = vec![Vec::new()];
    for size in 1..=r {
        let mut subset: Vec<usize> = (0..size).collect();
        loop {
            patterns.push(subset.clone());
            let mut i = size;
            let mut done = true;
            while i > 0 {
                i -= 1;
                if subset[i] != i + n - size {
                    subset[i] += 1;
                    for j in i + 1..size {
                        subset[j] = subset[j - 1] + 1;
                    }
                    done = false;
                    break;
                }
            }
            if done {
                break;
            }
        }
    }
    patterns
}

fn shard(len: usize, salt: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 31 + salt * 131 + 7) as u8).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn parallel_reconstruct_matches_single_thread_for_all_patterns(
        k in 2usize..6,
        r in 1usize..4,
        extra in 0usize..257,
        threads in 2usize..5,
    ) {
        let len = slice::PAR_ENGAGE_MIN + extra; // engages the parallel split
        let rs = ReedSolomon::new(k, r).expect("valid parameters");
        let data: Vec<Vec<u8>> = (0..k).map(|i| shard(len, i)).collect();
        let coded = rayon::with_num_threads(1, || rs.encode(&data).expect("encodes"));

        for pattern in erasure_patterns(k + r, r) {
            let present: Vec<Option<&[u8]>> = coded
                .iter()
                .enumerate()
                .map(|(i, s)| (!pattern.contains(&i)).then_some(s.as_slice()))
                .collect();
            let mut serial = vec![vec![0u8; len]; k + r];
            rayon::with_num_threads(1, || {
                rs.reconstruct_into(&present, len, &mut serial).expect("reconstructs")
            });
            let mut parallel = vec![vec![0xa5u8; len]; k + r];
            rayon::with_num_threads(threads, || {
                rs.reconstruct_into(&present, len, &mut parallel).expect("reconstructs")
            });
            prop_assert_eq!(&serial, &parallel, "pattern {:?} diverged", pattern);
            prop_assert_eq!(&serial, &coded, "pattern {:?} misreconstructed", pattern);
        }
    }

    #[test]
    fn parallel_encode_matches_single_thread(
        k in 1usize..8,
        m in 1usize..4,
        extra in 0usize..257,
        threads in 2usize..5,
    ) {
        let len = slice::PAR_ENGAGE_MIN + extra;
        let rs = ReedSolomon::new(k, m).expect("valid parameters");
        let data: Vec<Vec<u8>> = (0..k).map(|i| shard(len, i + 3)).collect();
        let mut serial = vec![vec![0u8; len]; m];
        rayon::with_num_threads(1, || rs.encode_into(&data, &mut serial).expect("encodes"));
        let mut parallel = vec![vec![0x5au8; len]; m];
        rayon::with_num_threads(threads, || {
            rs.encode_into(&data, &mut parallel).expect("encodes")
        });
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn parallel_linear_combination_matches_single_thread(
        n in 1usize..7,
        extra in 0usize..513,
        threads in 2usize..5,
        coeff_seed in any::<u8>(),
    ) {
        let len = slice::PAR_ENGAGE_MIN + extra;
        let blocks: Vec<Vec<u8>> = (0..n).map(|i| shard(len, i)).collect();
        let coeffs: Vec<Gf256> = (0..n)
            .map(|i| Gf256::new(coeff_seed.wrapping_mul(29).wrapping_add(i as u8)))
            .collect();
        let mut serial = vec![0u8; len];
        rayon::with_num_threads(1, || {
            slice::linear_combination_into(&coeffs, &blocks, &mut serial)
        });
        let mut parallel = vec![0xffu8; len];
        rayon::with_num_threads(threads, || {
            slice::linear_combination_into(&coeffs, &blocks, &mut parallel)
        });
        prop_assert_eq!(serial, parallel);
    }
}
