//! Proves the zero-allocation claim of the `*_into` encode paths with a
//! counting global allocator: once buffers exist and the kernel dispatch is
//! warm, `ReedSolomon::encode_into`, `slice::linear_combination_into` and
//! `slice::matrix_mul_into` perform no heap allocation at all.
//!
//! This lives in its own integration-test binary, and the counter only
//! counts allocations made by the *measured thread*: the libtest harness's
//! main thread blocks in a channel `recv` while the test body runs, and its
//! waker registration allocates at a nondeterministic moment — fast kernels
//! made that land inside the measured window often enough to flake.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use drc_gf::{slice, Gf256, ReedSolomon};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);
/// Marker address of the thread whose allocations are counted (0 = none).
static MEASURED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// A per-thread address that identifies the thread inside `alloc`
    /// without allocating (const-initialised TLS never lazily allocates).
    static THREAD_MARKER: u8 = const { 0 };
}

/// Whether the calling thread is the one registered by [`measure_this_thread`]
/// (false during thread teardown, when TLS is gone).
fn on_measured_thread() -> bool {
    THREAD_MARKER
        .try_with(|m| m as *const u8 as usize)
        .map(|addr| MEASURED.load(Ordering::Relaxed) == addr)
        .unwrap_or(false)
}

/// Registers the calling thread as the one whose allocations count.
fn measure_this_thread() {
    THREAD_MARKER.with(|m| MEASURED.store(m as *const u8 as usize, Ordering::Relaxed));
}

// SAFETY: `unsafe` is required by the `GlobalAlloc` contract; every call
// forwards to `System` with the caller's layout and pointer unchanged, so
// the contract is upheld verbatim and the counters touch no allocator state.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: caller upholds the `GlobalAlloc` contract; forwarded to
    // `System` unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if on_measured_thread() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: same arguments the caller handed us.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds the `GlobalAlloc` contract; forwarded to
    // `System` unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: same arguments the caller handed us.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller upholds the `GlobalAlloc` contract; forwarded to
    // `System` unchanged.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if on_measured_thread() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: same arguments the caller handed us.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn into_paths_are_allocation_free() {
    measure_this_thread();
    encode_into_is_allocation_free();
    slice_into_helpers_are_allocation_free();
}

fn encode_into_is_allocation_free() {
    let rs = ReedSolomon::new(10, 4).expect("valid parameters");
    let shard = 8 * 1024;
    let data: Vec<Vec<u8>> = (0..10).map(|i| vec![i as u8 + 1; shard]).collect();
    let mut parity = vec![vec![0u8; shard]; 4];

    // Warm up the cached kernel selection (and any lazy statics).
    rs.encode_into(&data, &mut parity).expect("encodes");

    let before = allocations();
    for _ in 0..32 {
        rs.encode_into(&data, &mut parity).expect("encodes");
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "encode_into must not allocate with caller-owned buffers"
    );

    // The result is still correct, not just fast.
    let coded = rs.encode(&data).expect("encodes");
    assert_eq!(parity.as_slice(), &coded[10..]);
}

fn slice_into_helpers_are_allocation_free() {
    let len = 4 * 1024;
    let blocks: Vec<Vec<u8>> = (0..6).map(|i| vec![(i * 17 + 3) as u8; len]).collect();
    let coeffs: Vec<Gf256> = (1..=6).map(Gf256::new).collect();
    let mut out = vec![0u8; len];
    let mut outs = vec![vec![0u8; len]; 2];
    let matrix: Vec<Gf256> = (1..=12).map(Gf256::new).collect();

    slice::linear_combination_into(&coeffs, &blocks, &mut out);
    slice::matrix_mul_into(&matrix, 6, &blocks, &mut outs);

    let before = allocations();
    for _ in 0..32 {
        slice::linear_combination_into(&coeffs, &blocks, &mut out);
        slice::matrix_mul_into(&matrix, 6, &blocks, &mut outs);
    }
    assert_eq!(
        allocations() - before,
        0,
        "slice *_into helpers must not allocate"
    );
}
