//! Property-based tests for the GF(2^8) field, matrices and the RS codec —
//! including differential tests that every bulk kernel variant (SIMD,
//! wide-scalar, reference) agrees byte-for-byte.

use drc_gf::{kernel, slice, Gf256, Matrix, Polynomial, ReedSolomon};
use proptest::prelude::*;

fn gf_elem() -> impl Strategy<Value = Gf256> {
    any::<u8>().prop_map(Gf256::new)
}

/// Deterministic pseudo-random buffer from a seed (keeps the strategies
/// cheap: generating whole megabyte buffers through proptest would dominate
/// the run time).
fn fill(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

/// Lengths that exercise empty input, single bytes, lane remainders and
/// multi-lane spans for every kernel width (8/16/32/64 bytes — the 63/64/65
/// and 127/128/129 points straddle the AVX-512 gfni/vbmi lane boundary).
fn awkward_len() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(0usize),
        Just(1usize),
        Just(7usize),
        Just(8usize),
        Just(15usize),
        Just(16usize),
        Just(31usize),
        Just(32usize),
        Just(33usize),
        Just(63usize),
        Just(64usize),
        Just(65usize),
        Just(127usize),
        Just(128usize),
        Just(129usize),
        1usize..260,
    ]
}

proptest! {
    #[test]
    fn field_axioms(a in gf_elem(), b in gf_elem(), c in gf_elem()) {
        // Commutativity
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a * b, b * a);
        // Associativity
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!((a * b) * c, a * (b * c));
        // Distributivity
        prop_assert_eq!(a * (b + c), a * b + a * c);
        // Identities
        prop_assert_eq!(a + Gf256::ZERO, a);
        prop_assert_eq!(a * Gf256::ONE, a);
        // Additive inverse (characteristic 2)
        prop_assert_eq!(a + a, Gf256::ZERO);
    }

    #[test]
    fn division_inverts_multiplication(a in gf_elem(), b in gf_elem()) {
        prop_assume!(!b.is_zero());
        prop_assert_eq!((a * b) / b, a);
        prop_assert_eq!((a / b) * b, a);
    }

    #[test]
    fn pow_homomorphism(a in gf_elem(), e1 in 0u32..600, e2 in 0u32..600) {
        prop_assume!(!a.is_zero());
        prop_assert_eq!(a.pow(e1) * a.pow(e2), a.pow(e1 + e2));
    }

    #[test]
    fn xor_all_order_independent(mut blocks in prop::collection::vec(prop::collection::vec(any::<u8>(), 16), 1..6)) {
        let p1 = slice::xor_all(&blocks);
        blocks.reverse();
        let p2 = slice::xor_all(&blocks);
        prop_assert_eq!(p1, p2);
    }

    #[test]
    fn linear_combination_is_linear(
        data in prop::collection::vec(prop::collection::vec(any::<u8>(), 8), 3),
        c1 in gf_elem(), c2 in gf_elem(), c3 in gf_elem(), s in gf_elem(),
    ) {
        let coeffs = [c1, c2, c3];
        let combo = slice::linear_combination(&coeffs, &data, 8);
        // Scaling all coefficients scales the result.
        let scaled_coeffs: Vec<Gf256> = coeffs.iter().map(|c| *c * s).collect();
        let mut scaled_combo = combo.clone();
        slice::scale_assign(&mut scaled_combo, s);
        prop_assert_eq!(slice::linear_combination(&scaled_coeffs, &data, 8), scaled_combo);
    }

    #[test]
    fn square_vandermonde_invertible(n in 1usize..12) {
        let rows: Vec<usize> = (0..n).collect();
        let m = Matrix::vandermonde(20, n).unwrap().select_rows(&rows);
        prop_assert!(m.is_invertible());
        let inv = m.inverse().unwrap();
        prop_assert_eq!(&m * &inv, Matrix::identity(n));
    }

    #[test]
    fn matrix_mul_associative(
        a in prop::collection::vec(prop::collection::vec(any::<u8>(), 3), 3),
        b in prop::collection::vec(prop::collection::vec(any::<u8>(), 3), 3),
        c in prop::collection::vec(prop::collection::vec(any::<u8>(), 3), 3),
    ) {
        let a = Matrix::from_rows(&a).unwrap();
        let b = Matrix::from_rows(&b).unwrap();
        let c = Matrix::from_rows(&c).unwrap();
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }

    #[test]
    fn polynomial_interpolation_roundtrip(coeffs in prop::collection::vec(any::<u8>(), 1..8)) {
        let p = Polynomial::new(coeffs.into_iter().map(Gf256::new).collect());
        let npoints = p.coefficients().len().max(1);
        let points: Vec<(Gf256, Gf256)> = (0..npoints as u8)
            .map(|x| (Gf256::new(x), p.eval(Gf256::new(x))))
            .collect();
        let q = Polynomial::interpolate(&points).unwrap();
        prop_assert_eq!(p, q);
    }

    #[test]
    fn kernels_agree_on_mul_acc(
        len in awkward_len(),
        offset in 0usize..17,
        coeff in prop_oneof![Just(0u8), Just(1u8), any::<u8>()],
        seed in any::<u64>(),
    ) {
        // Operate on a sub-slice at `offset` so the SIMD paths see every
        // possible misalignment of the 16/32-byte lanes.
        let src = fill(seed, offset + len);
        let dst0 = fill(seed ^ 0xabcd, offset + len);
        let mut expected = dst0.clone();
        kernel::reference().mul_acc(&mut expected[offset..], &src[offset..], coeff);
        for kern in kernel::all() {
            let mut dst = dst0.clone();
            kern.mul_acc(&mut dst[offset..], &src[offset..], coeff);
            prop_assert_eq!(&dst, &expected, "kernel {} disagrees (len={}, offset={}, coeff={:#04x})", kern.name(), len, offset, coeff);
        }
    }

    #[test]
    fn kernels_agree_on_xor_and_scale(
        len in awkward_len(),
        offset in 0usize..17,
        coeff in prop_oneof![Just(0u8), Just(1u8), any::<u8>()],
        seed in any::<u64>(),
    ) {
        let src = fill(seed, offset + len);
        let dst0 = fill(seed ^ 0x1234, offset + len);
        let mut expected_xor = dst0.clone();
        kernel::reference().xor_assign(&mut expected_xor[offset..], &src[offset..]);
        let mut expected_scale = dst0.clone();
        kernel::reference().scale_assign(&mut expected_scale[offset..], coeff);
        for kern in kernel::all() {
            let mut dst = dst0.clone();
            kern.xor_assign(&mut dst[offset..], &src[offset..]);
            prop_assert_eq!(&dst, &expected_xor, "xor: kernel {} disagrees", kern.name());
            let mut dst = dst0.clone();
            kern.scale_assign(&mut dst[offset..], coeff);
            prop_assert_eq!(&dst, &expected_scale, "scale: kernel {} disagrees (coeff={:#04x})", kern.name(), coeff);
        }
    }

    #[test]
    fn kernel_mul_acc_matches_field_arithmetic(
        len in 1usize..80,
        coeff in any::<u8>(),
        seed in any::<u64>(),
    ) {
        // The kernels must implement the same field the scalar Gf256 does.
        let src = fill(seed, len);
        let mut dst = fill(seed ^ 0x77, len);
        let expected: Vec<u8> = dst
            .iter()
            .zip(&src)
            .map(|(d, s)| d ^ (Gf256::new(*s) * Gf256::new(coeff)).value())
            .collect();
        slice::mul_acc(&mut dst, &src, Gf256::new(coeff));
        prop_assert_eq!(dst, expected);
    }

    #[test]
    fn linear_combination_into_matches_allocating(
        k in 1usize..8,
        len in awkward_len(),
        seed in any::<u64>(),
    ) {
        let blocks: Vec<Vec<u8>> = (0..k).map(|j| fill(seed ^ j as u64, len)).collect();
        let coeffs: Vec<Gf256> = (0..k).map(|j| Gf256::new(fill(seed ^ 0xfe, k)[j])).collect();
        let expected = slice::linear_combination(&coeffs, &blocks, len);
        let mut out = fill(!seed, len); // dirty buffer must be overwritten
        slice::linear_combination_into(&coeffs, &blocks, &mut out);
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn matrix_mul_into_matches_row_by_row(
        k in 1usize..6,
        m in 1usize..5,
        len in awkward_len(),
        seed in any::<u64>(),
    ) {
        let blocks: Vec<Vec<u8>> = (0..k).map(|j| fill(seed ^ j as u64, len)).collect();
        let coeff_bytes = fill(seed ^ 0xc0ffee, m * k);
        let coeffs: Vec<Gf256> = coeff_bytes.iter().copied().map(Gf256::new).collect();
        let mut outs = vec![vec![0xa5u8; len]; m];
        slice::matrix_mul_into(&coeffs, k, &blocks, &mut outs);
        for p in 0..m {
            let expected = slice::linear_combination(&coeffs[p * k..(p + 1) * k], &blocks, len);
            prop_assert_eq!(&outs[p], &expected, "row {}", p);
        }
    }

    #[test]
    fn encode_into_equals_encode(
        k in 1usize..9,
        m in 1usize..5,
        len in awkward_len(),
        seed in any::<u64>(),
    ) {
        let rs = ReedSolomon::new(k, m).unwrap();
        let data: Vec<Vec<u8>> = (0..k).map(|j| fill(seed ^ j as u64, len)).collect();
        let coded = rs.encode(&data).unwrap();
        prop_assert_eq!(&coded[..k], data.as_slice(), "systematic prefix");
        let mut parity = vec![vec![0u8; len]; m];
        rs.encode_into(&data, &mut parity).unwrap();
        prop_assert_eq!(parity.as_slice(), &coded[k..]);
    }

    #[test]
    fn reconstruct_into_equals_reconstruct(
        k in 2usize..7,
        m in 1usize..4,
        len in 1usize..40,
        seed in any::<u64>(),
    ) {
        let rs = ReedSolomon::new(k, m).unwrap();
        let data: Vec<Vec<u8>> = (0..k).map(|j| fill(seed ^ j as u64, len)).collect();
        let coded = rs.encode(&data).unwrap();
        // Drop the first m shards (worst case: data shards lost).
        let present: Vec<Option<&[u8]>> = coded
            .iter()
            .enumerate()
            .map(|(i, s)| (i >= m).then_some(s.as_slice()))
            .collect();
        let rec = rs.reconstruct(&present, len).unwrap();
        let mut out = vec![vec![0xeeu8; len]; k + m];
        rs.reconstruct_into(&present, len, &mut out).unwrap();
        prop_assert_eq!(&out, &rec);
        prop_assert_eq!(&rec, &coded);
    }

    #[test]
    fn rs_reconstructs_random_losses(
        k in 2usize..8,
        m in 1usize..5,
        len in 1usize..64,
        seed in any::<u64>(),
    ) {
        let rs = ReedSolomon::new(k, m).unwrap();
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..len).map(|j| (seed as usize + i * 31 + j * 7) as u8).collect())
            .collect();
        let coded = rs.encode(&data).unwrap();
        // Drop exactly m shards chosen pseudo-randomly from the seed.
        let mut present: Vec<Option<&[u8]>> = coded.iter().map(|s| Some(s.as_slice())).collect();
        let mut dropped = 0usize;
        let mut idx = seed as usize;
        while dropped < m {
            idx = idx.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pos = idx % (k + m);
            if present[pos].is_some() {
                present[pos] = None;
                dropped += 1;
            }
        }
        let rec = rs.reconstruct(&present, len).unwrap();
        prop_assert_eq!(rec, coded);
    }
}
