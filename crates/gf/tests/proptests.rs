//! Property-based tests for the GF(2^8) field, matrices and the RS codec.

use drc_gf::{slice, Gf256, Matrix, Polynomial, ReedSolomon};
use proptest::prelude::*;

fn gf_elem() -> impl Strategy<Value = Gf256> {
    any::<u8>().prop_map(Gf256::new)
}

proptest! {
    #[test]
    fn field_axioms(a in gf_elem(), b in gf_elem(), c in gf_elem()) {
        // Commutativity
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a * b, b * a);
        // Associativity
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!((a * b) * c, a * (b * c));
        // Distributivity
        prop_assert_eq!(a * (b + c), a * b + a * c);
        // Identities
        prop_assert_eq!(a + Gf256::ZERO, a);
        prop_assert_eq!(a * Gf256::ONE, a);
        // Additive inverse (characteristic 2)
        prop_assert_eq!(a + a, Gf256::ZERO);
    }

    #[test]
    fn division_inverts_multiplication(a in gf_elem(), b in gf_elem()) {
        prop_assume!(!b.is_zero());
        prop_assert_eq!((a * b) / b, a);
        prop_assert_eq!((a / b) * b, a);
    }

    #[test]
    fn pow_homomorphism(a in gf_elem(), e1 in 0u32..600, e2 in 0u32..600) {
        prop_assume!(!a.is_zero());
        prop_assert_eq!(a.pow(e1) * a.pow(e2), a.pow(e1 + e2));
    }

    #[test]
    fn xor_all_order_independent(mut blocks in prop::collection::vec(prop::collection::vec(any::<u8>(), 16), 1..6)) {
        let p1 = slice::xor_all(&blocks);
        blocks.reverse();
        let p2 = slice::xor_all(&blocks);
        prop_assert_eq!(p1, p2);
    }

    #[test]
    fn linear_combination_is_linear(
        data in prop::collection::vec(prop::collection::vec(any::<u8>(), 8), 3),
        c1 in gf_elem(), c2 in gf_elem(), c3 in gf_elem(), s in gf_elem(),
    ) {
        let coeffs = [c1, c2, c3];
        let combo = slice::linear_combination(&coeffs, &data, 8);
        // Scaling all coefficients scales the result.
        let scaled_coeffs: Vec<Gf256> = coeffs.iter().map(|c| *c * s).collect();
        let mut scaled_combo = combo.clone();
        slice::scale_assign(&mut scaled_combo, s);
        prop_assert_eq!(slice::linear_combination(&scaled_coeffs, &data, 8), scaled_combo);
    }

    #[test]
    fn square_vandermonde_invertible(n in 1usize..12) {
        let rows: Vec<usize> = (0..n).collect();
        let m = Matrix::vandermonde(20, n).unwrap().select_rows(&rows);
        prop_assert!(m.is_invertible());
        let inv = m.inverse().unwrap();
        prop_assert_eq!(&m * &inv, Matrix::identity(n));
    }

    #[test]
    fn matrix_mul_associative(
        a in prop::collection::vec(prop::collection::vec(any::<u8>(), 3), 3),
        b in prop::collection::vec(prop::collection::vec(any::<u8>(), 3), 3),
        c in prop::collection::vec(prop::collection::vec(any::<u8>(), 3), 3),
    ) {
        let a = Matrix::from_rows(&a).unwrap();
        let b = Matrix::from_rows(&b).unwrap();
        let c = Matrix::from_rows(&c).unwrap();
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }

    #[test]
    fn polynomial_interpolation_roundtrip(coeffs in prop::collection::vec(any::<u8>(), 1..8)) {
        let p = Polynomial::new(coeffs.into_iter().map(Gf256::new).collect());
        let npoints = p.coefficients().len().max(1);
        let points: Vec<(Gf256, Gf256)> = (0..npoints as u8)
            .map(|x| (Gf256::new(x), p.eval(Gf256::new(x))))
            .collect();
        let q = Polynomial::interpolate(&points).unwrap();
        prop_assert_eq!(p, q);
    }

    #[test]
    fn rs_reconstructs_random_losses(
        k in 2usize..8,
        m in 1usize..5,
        len in 1usize..64,
        seed in any::<u64>(),
    ) {
        let rs = ReedSolomon::new(k, m).unwrap();
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..len).map(|j| (seed as usize + i * 31 + j * 7) as u8).collect())
            .collect();
        let coded = rs.encode(&data).unwrap();
        // Drop exactly m shards chosen pseudo-randomly from the seed.
        let mut present: Vec<Option<&[u8]>> = coded.iter().map(|s| Some(s.as_slice())).collect();
        let mut dropped = 0usize;
        let mut idx = seed as usize;
        while dropped < m {
            idx = idx.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pos = idx % (k + m);
            if present[pos].is_some() {
                present[pos] = None;
                dropped += 1;
            }
        }
        let rec = rs.reconstruct(&present, len).unwrap();
        prop_assert_eq!(rec, coded);
    }
}
