//! `drc-lint`: runs the workspace static-analysis pass and writes
//! `LINT.json` at the workspace root.
//!
//! Exit status is non-zero if any unsuppressed violation exists, if the
//! unsafe inventory exceeds the budget in `crates/lint/unsafe_budget.txt`,
//! or if that budget file is malformed. `--quiet` suppresses the per-rule
//! summary (violations always print).

#![forbid(unsafe_code)]

use std::path::Path;
use std::process::ExitCode;

use drc_lint::engine::{self, parse_budget, UnsafeBudget};
use drc_lint::rules::RULE_IDS;

/// Workspace root, independent of the cwd cargo gives bin targets.
const WORKSPACE_ROOT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");

fn main() -> ExitCode {
    let quiet = std::env::args().any(|a| a == "--quiet");
    let root = Path::new(WORKSPACE_ROOT);

    let files = match engine::collect_files(root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("drc-lint: cannot read workspace sources: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = engine::run_files(&files);

    let budget_path = root.join("crates/lint/unsafe_budget.txt");
    let budget = match std::fs::read_to_string(&budget_path)
        .map_err(|e| format!("cannot read {}: {e}", budget_path.display()))
        .and_then(|text| parse_budget(&text))
    {
        Ok(b) => b,
        Err(e) => {
            eprintln!("drc-lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    let doc = engine::to_json(&report, &budget);
    let json = match serde_json::to_string_pretty(&doc) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("drc-lint: cannot render LINT.json: {e}");
            return ExitCode::FAILURE;
        }
    };
    let lint_json = root.join("LINT.json");
    if let Err(e) = std::fs::write(&lint_json, json + "\n") {
        eprintln!("drc-lint: cannot write {}: {e}", lint_json.display());
        return ExitCode::FAILURE;
    }

    if !quiet {
        println!(
            "drc-lint: scanned {} files; unsafe inventory {} (budget {}), {} suppression(s)",
            report.files_scanned,
            report.unsafe_inventory.len(),
            budget.max,
            report.suppressed.len(),
        );
        for rule in RULE_IDS {
            let n = report.findings_for(rule).len();
            let sup = report
                .suppressed
                .iter()
                .filter(|sf| sf.finding.rule == *rule)
                .count();
            println!("  {rule:<24} {n} violation(s), {sup} suppressed");
        }
    }

    let mut failed = false;
    for f in &report.findings {
        eprintln!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
        failed = true;
    }
    if let Some(msg) = budget_breach(&report.unsafe_inventory.len(), &budget) {
        eprintln!("{msg}");
        failed = true;
    }

    if failed {
        eprintln!(
            "drc-lint: FAILED — fix the violations above or add a justified \
             `// drc-lint: allow(<rule>): <why>` marker"
        );
        ExitCode::FAILURE
    } else {
        println!("drc-lint: OK");
        ExitCode::SUCCESS
    }
}

fn budget_breach(count: &usize, budget: &UnsafeBudget) -> Option<String> {
    (*count > budget.max).then(|| {
        format!(
            "drc-lint: unsafe inventory grew to {count} sites, over the budget of {} \
             (crates/lint/unsafe_budget.txt). Audit the new unsafe code, add SAFETY comments, \
             then append a justified budget line.",
            budget.max
        )
    })
}
