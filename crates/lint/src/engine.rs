//! The workspace pass: file collection, cross-file rule wiring,
//! suppression application, the unsafe budget and the `LINT.json` report.

use std::path::{Path, PathBuf};

use crate::rules::{
    self, check_file, check_target_feature_calls, suppressions, Finding, Suppression,
    TargetFeatureFn, UnsafeSite, MIN_JUSTIFICATION, RULE_IDS,
};
use crate::scan::scan;

/// One source file handed to the engine (path is workspace-relative with
/// forward slashes).
#[derive(Debug, Clone)]
pub struct FileInput {
    /// Workspace-relative path.
    pub path: String,
    /// Full file contents.
    pub source: String,
}

/// A finding that was silenced by a justified suppression marker.
#[derive(Debug, Clone)]
pub struct SuppressedFinding {
    /// The silenced finding.
    pub finding: Finding,
    /// The marker's justification text.
    pub justification: String,
}

/// Everything one whole-workspace pass produces.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Unsuppressed violations — the pass fails if any exist.
    pub findings: Vec<Finding>,
    /// Violations silenced by justified markers.
    pub suppressed: Vec<SuppressedFinding>,
    /// Every `unsafe` occurrence in the workspace (vendor included).
    pub unsafe_inventory: Vec<UnsafeSite>,
    /// Every `#[target_feature]` function definition.
    pub target_feature_fns: Vec<TargetFeatureFn>,
}

impl Report {
    /// Unsuppressed findings for one rule.
    pub fn findings_for(&self, rule: &str) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.rule == rule).collect()
    }
}

/// Runs the full pass over in-memory files (the unit-testable core; the
/// binary wraps it with filesystem walking).
pub fn run_files(files: &[FileInput]) -> Report {
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };

    // Pass 1: scan + single-file rules.
    let mut scans = Vec::with_capacity(files.len());
    let mut per_file_findings: Vec<Vec<Finding>> = Vec::with_capacity(files.len());
    for f in files {
        let s = scan(&f.source);
        let checked = check_file(&f.path, &s);
        report.unsafe_inventory.extend(checked.unsafe_sites);
        report
            .target_feature_fns
            .extend(checked.target_feature_fns.clone());
        per_file_findings.push(checked.findings);
        scans.push(s);
    }

    // Pass 2: cross-file target-feature call gating.
    for (i, f) in files.iter().enumerate() {
        per_file_findings[i].extend(check_target_feature_calls(
            &f.path,
            &scans[i],
            &report.target_feature_fns,
        ));
    }

    // Pass 3: apply suppressions per file.
    for (i, f) in files.iter().enumerate() {
        let sups = suppressions(&scans[i]);
        let mut used = vec![false; sups.len()];
        for finding in per_file_findings[i].drain(..) {
            match matching_suppression(&sups, &finding) {
                Some(si) => {
                    used[si] = true;
                    let justification = sups[si].justification.clone();
                    if justification.len() >= MIN_JUSTIFICATION {
                        report.suppressed.push(SuppressedFinding {
                            finding,
                            justification,
                        });
                    } else {
                        // An unjustified marker does not silence anything.
                        report.findings.push(finding);
                    }
                }
                None => report.findings.push(finding),
            }
        }
        // Marker hygiene: malformed ids, missing justifications on used
        // markers, and stale markers that silence nothing.
        for (si, sup) in sups.iter().enumerate() {
            report
                .findings
                .extend(marker_hygiene(&f.path, sup, used[si]));
        }
    }

    // Deterministic report order.
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    report
        .suppressed
        .sort_by(|a, b| (&a.finding.path, a.finding.line).cmp(&(&b.finding.path, b.finding.line)));
    report
        .unsafe_inventory
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    report
}

fn matching_suppression(sups: &[Suppression], finding: &Finding) -> Option<usize> {
    // suppression-hygiene findings are never themselves suppressible.
    if finding.rule == "suppression-hygiene" {
        return None;
    }
    sups.iter().position(|s| {
        s.rules.iter().any(|r| r == finding.rule) && s.applies_to.contains(&finding.line)
    })
}

fn marker_hygiene(path: &str, sup: &Suppression, used: bool) -> Vec<Finding> {
    let mut out = Vec::new();
    if sup.rules.is_empty() {
        out.push(Finding {
            path: path.to_string(),
            line: sup.line,
            rule: "suppression-hygiene",
            message: "malformed `drc-lint: allow(...)` marker (no rule ids)".to_string(),
        });
        return out;
    }
    for r in &sup.rules {
        if !RULE_IDS.contains(&r.as_str()) {
            out.push(Finding {
                path: path.to_string(),
                line: sup.line,
                rule: "suppression-hygiene",
                message: format!("suppression names unknown rule `{r}`"),
            });
        }
    }
    if sup.justification.len() < MIN_JUSTIFICATION {
        out.push(Finding {
            path: path.to_string(),
            line: sup.line,
            rule: "suppression-hygiene",
            message: format!(
                "suppression without a justification (need at least {MIN_JUSTIFICATION} \
                 characters after `allow(...)`)"
            ),
        });
    } else if !used {
        out.push(Finding {
            path: path.to_string(),
            line: sup.line,
            rule: "suppression-hygiene",
            message: "stale suppression: it silences no finding — remove it".to_string(),
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Filesystem walking.
// ---------------------------------------------------------------------------

/// Directory subtrees the workspace pass scans, relative to the root.
pub const SCAN_ROOTS: &[&str] = &["crates", "vendor", "src", "tests", "examples"];

/// Path substrings excluded from the scan (fixtures are deliberately full
/// of violations; `target` holds build products).
pub const SCAN_EXCLUDES: &[&str] = &["crates/lint/tests/fixtures", "target"];

/// Collects every `.rs` file under the scan roots, sorted for determinism.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<FileInput>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    for sub in SCAN_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            walk(&dir, &mut paths)?;
        }
    }
    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        if SCAN_EXCLUDES.iter().any(|e| rel.contains(e)) {
            continue;
        }
        files.push(FileInput {
            source: std::fs::read_to_string(&p)?,
            path: rel,
        });
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name == "target" || name == ".git" {
                continue;
            }
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Unsafe budget.
// ---------------------------------------------------------------------------

/// The parsed unsafe budget file (`crates/lint/unsafe_budget.txt`): a
/// history of `<count> <justification>` lines; the last line is the budget
/// in force. Growing the unsafe inventory requires appending a justified
/// line, which shows up in review.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeBudget {
    /// Maximum allowed inventory size.
    pub max: usize,
    /// Justification recorded for the budget in force.
    pub justification: String,
}

/// Parses the budget file contents.
///
/// # Errors
///
/// Returns a description of the malformed line if any entry lacks a count
/// or a justification, or the file has no entries.
pub fn parse_budget(text: &str) -> Result<UnsafeBudget, String> {
    let mut last: Option<UnsafeBudget> = None;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (count, justification) = line.split_once(' ').ok_or_else(|| {
            format!(
                "unsafe_budget.txt:{}: entry needs `<count> <justification>`",
                i + 1
            )
        })?;
        let max: usize = count
            .parse()
            .map_err(|_| format!("unsafe_budget.txt:{}: `{count}` is not a count", i + 1))?;
        let justification = justification.trim().to_string();
        if justification.len() < MIN_JUSTIFICATION {
            return Err(format!(
                "unsafe_budget.txt:{}: budget changes need a justification (≥ {MIN_JUSTIFICATION} \
                 characters)",
                i + 1
            ));
        }
        last = Some(UnsafeBudget { max, justification });
    }
    last.ok_or_else(|| "unsafe_budget.txt has no budget entries".to_string())
}

// ---------------------------------------------------------------------------
// LINT.json rendering.
// ---------------------------------------------------------------------------

fn s(v: &str) -> serde_json::Value {
    serde_json::Value::Str(v.to_string())
}

fn u(v: usize) -> serde_json::Value {
    serde_json::Value::UInt(v as u64)
}

fn finding_json(f: &Finding) -> serde_json::Value {
    serde_json::Value::Map(vec![
        ("file".to_string(), s(&f.path)),
        ("line".to_string(), u(f.line as usize)),
        ("rule".to_string(), s(f.rule)),
        ("message".to_string(), s(&f.message)),
    ])
}

/// Renders the machine-readable `LINT.json` document: provenance stamp,
/// per-rule counts, unsuppressed violations, justified suppressions and the
/// unsafe inventory with its budget.
pub fn to_json(report: &Report, budget: &UnsafeBudget) -> serde_json::Value {
    let per_rule: Vec<(String, serde_json::Value)> = RULE_IDS
        .iter()
        .map(|rule| {
            let violations = report.findings.iter().filter(|f| f.rule == *rule).count();
            let suppressed = report
                .suppressed
                .iter()
                .filter(|sf| sf.finding.rule == *rule)
                .count();
            (
                (*rule).to_string(),
                serde_json::Value::Map(vec![
                    ("violations".to_string(), u(violations)),
                    ("suppressed".to_string(), u(suppressed)),
                ]),
            )
        })
        .collect();

    serde_json::Value::Map(vec![
        ("provenance".to_string(), drc_bench::provenance()),
        ("files_scanned".to_string(), u(report.files_scanned)),
        ("rules".to_string(), serde_json::Value::Map(per_rule)),
        (
            "violations".to_string(),
            serde_json::Value::Seq(report.findings.iter().map(finding_json).collect()),
        ),
        (
            "suppressions".to_string(),
            serde_json::Value::Seq(
                report
                    .suppressed
                    .iter()
                    .map(|sf| {
                        serde_json::Value::Map(vec![
                            ("file".to_string(), s(&sf.finding.path)),
                            ("line".to_string(), u(sf.finding.line as usize)),
                            ("rule".to_string(), s(sf.finding.rule)),
                            ("justification".to_string(), s(&sf.justification)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "unsafe_inventory".to_string(),
            serde_json::Value::Seq(
                report
                    .unsafe_inventory
                    .iter()
                    .map(|site| {
                        serde_json::Value::Map(vec![
                            ("file".to_string(), s(&site.path)),
                            ("line".to_string(), u(site.line as usize)),
                            ("kind".to_string(), s(site.kind)),
                            (
                                "has_safety_comment".to_string(),
                                serde_json::Value::Bool(site.has_safety),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("unsafe_count".to_string(), u(report.unsafe_inventory.len())),
        ("unsafe_budget".to_string(), u(budget.max)),
        (
            "unsafe_budget_justification".to_string(),
            s(&budget.justification),
        ),
        (
            "target_feature_fns".to_string(),
            serde_json::Value::Seq(
                report
                    .target_feature_fns
                    .iter()
                    .map(|f| {
                        serde_json::Value::Map(vec![
                            ("file".to_string(), s(&f.path)),
                            ("line".to_string(), u(f.line as usize)),
                            ("name".to_string(), s(&f.name)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

// Re-export the rule table so the binary prints it without reaching into
// `rules` directly.
pub use rules::RULE_IDS as ALL_RULES;

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, source: &str) -> FileInput {
        FileInput {
            path: path.to_string(),
            source: source.to_string(),
        }
    }

    #[test]
    fn end_to_end_over_virtual_files() {
        let files = vec![
            file(
                "crates/gf/src/kernel.rs",
                "#[target_feature(enable = \"avx2\")]\n/// # Safety\nunsafe fn fast(d: &mut [u8]) {}\n",
            ),
            file(
                "crates/codes/src/lib.rs",
                "fn f() { unsafe { fast(d) } }\n",
            ),
        ];
        let report = run_files(&files);
        // codes calls the target_feature fn directly AND has an unsafe
        // block without SAFETY.
        let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"target-feature-gating"), "{rules:?}");
        assert!(rules.contains(&"unsafe-hygiene"), "{rules:?}");
        assert_eq!(report.unsafe_inventory.len(), 2);
        assert_eq!(report.target_feature_fns.len(), 1);
    }

    #[test]
    fn justified_suppression_moves_finding_to_suppressed() {
        let files = vec![file(
            "crates/sim/src/lib.rs",
            "// drc-lint: allow(determinism): build-time map, order never observed.\nuse std::collections::HashMap;\n",
        )];
        let report = run_files(&files);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.suppressed.len(), 1);
        assert_eq!(report.suppressed[0].finding.rule, "determinism");
    }

    #[test]
    fn unjustified_suppression_keeps_finding_and_flags_marker() {
        let files = vec![file(
            "crates/sim/src/lib.rs",
            "// drc-lint: allow(determinism)\nuse std::collections::HashMap;\n",
        )];
        let report = run_files(&files);
        let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"determinism"), "{rules:?}");
        assert!(rules.contains(&"suppression-hygiene"), "{rules:?}");
    }

    #[test]
    fn stale_suppression_is_flagged() {
        let files = vec![file(
            "crates/sim/src/lib.rs",
            "// drc-lint: allow(determinism): this map was removed long ago.\nuse std::collections::BTreeMap;\n",
        )];
        let report = run_files(&files);
        let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules, ["suppression-hygiene"]);
    }

    #[test]
    fn unknown_rule_in_suppression_is_flagged() {
        let files = vec![file(
            "crates/sim/src/lib.rs",
            "// drc-lint: allow(no-such-rule): whatever this was meant to do.\nfn f() {}\n",
        )];
        let report = run_files(&files);
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == "suppression-hygiene" && f.message.contains("no-such-rule")));
    }

    #[test]
    fn budget_parsing() {
        let b = parse_budget("# comment\n40 initial inventory after the SAFETY audit\n").unwrap();
        assert_eq!(b.max, 40);
        assert!(parse_budget("").is_err());
        assert!(parse_budget("40\n").is_err(), "missing justification");
        assert!(parse_budget("forty is fine\n").is_err());
        // History: last entry wins.
        let b =
            parse_budget("40 initial audit\n42 two new gfni kernels, SAFETY-reviewed\n").unwrap();
        assert_eq!(b.max, 42);
    }

    #[test]
    fn json_document_shape() {
        let files = vec![file("crates/sim/src/lib.rs", "fn ok() {}\n")];
        let report = run_files(&files);
        let doc = to_json(
            &report,
            &UnsafeBudget {
                max: 7,
                justification: "test budget".to_string(),
            },
        );
        let serde_json::Value::Map(entries) = &doc else {
            panic!("LINT.json must be a map");
        };
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        for expected in [
            "provenance",
            "files_scanned",
            "rules",
            "violations",
            "suppressions",
            "unsafe_inventory",
            "unsafe_count",
            "unsafe_budget",
            "target_feature_fns",
        ] {
            assert!(keys.contains(&expected), "missing {expected} in {keys:?}");
        }
        // Must round-trip through the vendored serde_json.
        let text = serde_json::to_string_pretty(&doc).expect("render");
        let back: serde_json::Value = serde_json::parse(&text).expect("parse");
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&doc).unwrap()
        );
    }
}
