//! The rule engine: six workspace rules grounded in this repo's failure
//! history, plus inline suppression handling.
//!
//! Each rule is identified by a stable kebab-ish id used both in findings
//! and in suppression markers:
//!
//! | id | guards against |
//! |---|---|
//! | `determinism` | wall-clock time, hash-order iteration and OS randomness in the sim-facing crates |
//! | `parallel-float-reduction` | float accumulation inside a parallel region (scheduling-order-dependent sums break byte-identical repro output) |
//! | `unsafe-hygiene` | `unsafe` without an adjacent `// SAFETY:` comment |
//! | `target-feature-gating` | `#[target_feature]` functions defined or called outside the kernel dispatch module |
//! | `lossy-float-cast` | `as u64`/`as usize`/`as u32` on float-typed expressions (the PR 3 truncation bug class) |
//! | `panic-hygiene` | `unwrap()`/`expect()`/`panic!` in non-test library code of the core crates (the PR 6 silent-miss lesson) |
//!
//! A violation is suppressed by a comment on the same line or the line
//! block immediately above:
//!
//! ```text
//! // drc-lint: allow(panic-hygiene): reached only if the arena invariant
//! // is already broken; an error here would mask index corruption.
//! ```
//!
//! The justification after the closing parenthesis is **mandatory** (at
//! least [`MIN_JUSTIFICATION`] characters); a bare `allow(...)` is itself a
//! violation (`suppression-hygiene`).

use crate::scan::{Scan, Tok, TokKind};

/// Rule ids, in report order.
pub const RULE_IDS: &[&str] = &[
    "determinism",
    "parallel-float-reduction",
    "unsafe-hygiene",
    "target-feature-gating",
    "lossy-float-cast",
    "panic-hygiene",
    "suppression-hygiene",
];

/// Minimum justification length (after trimming separators) for a
/// suppression marker to count as justified.
pub const MIN_JUSTIFICATION: usize = 8;

/// Crates whose `src/` trees must stay deterministic: virtual time and
/// `BTreeMap` are the law here.
pub const DETERMINISM_CRATES: &[&str] = &[
    "sim",
    "cluster",
    "hdfs",
    "mapreduce",
    "reliability",
    "codes",
];

/// Crates whose non-test library code must not panic: errors are typed.
pub const PANIC_CRATES: &[&str] = &[
    "sim",
    "cluster",
    "hdfs",
    "mapreduce",
    "reliability",
    "codes",
    "gf",
];

/// The only module allowed to define `#[target_feature]` functions, and the
/// only module allowed to call them (its safe dispatch wrappers).
pub const DISPATCH_MODULE: &str = "crates/gf/src/kernel.rs";

/// Functions sanctioned to cast float expressions to integers: the
/// checked/saturating byte-scaling path introduced after the PR 3 bug, and
/// the guarded seconds→nanoseconds converters (both reject non-finite input
/// and round explicitly before casting). Matching is by bare function name —
/// a same-named helper elsewhere inherits the sanction, so keep these names
/// specific.
pub const CAST_ALLOWLIST_FNS: &[&str] = &["scale_bytes", "from_secs_f64", "secs_to_ns"];

/// Identifiers whose presence in a determinism-scoped crate is a violation.
const NONDETERMINISM_IDENTS: &[(&str, &str)] = &[
    ("Instant", "wall-clock time; use drc_sim virtual time"),
    ("SystemTime", "wall-clock time; use drc_sim virtual time"),
    (
        "HashMap",
        "iteration order is nondeterministic; use BTreeMap",
    ),
    (
        "HashSet",
        "iteration order is nondeterministic; use BTreeSet",
    ),
    ("RandomState", "nondeterministic hasher seed"),
    (
        "thread_rng",
        "OS-seeded randomness; use a seeded ChaCha rng",
    ),
    ("OsRng", "OS randomness; use a seeded ChaCha rng"),
    (
        "from_entropy",
        "OS-seeded randomness; use a seeded ChaCha rng",
    ),
];

/// Call names that open a parallel region: everything lexically inside the
/// call's parentheses (closure bodies included) may execute on the worker
/// pool in scheduling order. `join` also matches thread handles and string
/// joins, but those never contain a float `+=` inside the call parens, so
/// the combination stays precise.
const PARALLEL_ENTRYPOINTS: &[&str] = &[
    "spawn",
    "scope",
    "join",
    "install",
    "broadcast",
    "par_iter",
    "par_iter_mut",
    "par_chunks",
    "par_bridge",
];

/// Float-returning methods that mark a cast operand as float-typed.
const FLOAT_METHODS: &[&str] = &[
    "ceil",
    "floor",
    "round",
    "trunc",
    "fract",
    "sqrt",
    "cbrt",
    "powf",
    "powi",
    "exp",
    "exp2",
    "ln",
    "log2",
    "log10",
    "hypot",
    "to_radians",
    "to_degrees",
    "recip",
    "mul_add",
];

/// One rule violation (or suppression-hygiene problem).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// One of [`RULE_IDS`].
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

/// One `unsafe` occurrence recorded in the inventory.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// `fn`, `block`, `impl`, `trait` or `other`.
    pub kind: &'static str,
    /// Whether an adjacent SAFETY comment was found.
    pub has_safety: bool,
}

/// A `#[target_feature]` function definition site.
#[derive(Debug, Clone)]
pub struct TargetFeatureFn {
    /// Workspace-relative path of the definition.
    pub path: String,
    /// 1-based line of the `fn` name.
    pub line: u32,
    /// The function's name.
    pub name: String,
}

/// Where a file sits in the workspace, derived from its path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// Short crate key (`sim` for `crates/sim/…`, `root` for top-level
    /// `src`/`tests`/`examples`, vendor crate name for `vendor/…`).
    pub crate_key: String,
    /// `src`, `tests`, `benches`, `examples` or `other`.
    pub section: &'static str,
    /// Whether the file lives under `vendor/`.
    pub vendor: bool,
}

/// Classifies a workspace-relative path (forward slashes).
pub fn classify(path: &str) -> FileClass {
    let parts: Vec<&str> = path.split('/').collect();
    let (crate_key, vendor, rest) = match parts.as_slice() {
        ["crates", name, rest @ ..] => ((*name).to_string(), false, rest),
        ["vendor", name, rest @ ..] => ((*name).to_string(), true, rest),
        rest => ("root".to_string(), false, rest),
    };
    let section = match rest.first().copied() {
        Some("src") => "src",
        Some("tests") => "tests",
        Some("benches") => "benches",
        Some("examples") => "examples",
        _ => "other",
    };
    FileClass {
        crate_key,
        section,
        vendor,
    }
}

// ---------------------------------------------------------------------------
// Suppressions.
// ---------------------------------------------------------------------------

/// A parsed `// drc-lint: allow(rule, …): justification` marker.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Line the marker appears on.
    pub line: u32,
    /// Rules it suppresses.
    pub rules: Vec<String>,
    /// The justification text (may be empty — then it is a violation).
    pub justification: String,
    /// Lines the marker applies to (its own plus the next code line).
    pub applies_to: Vec<u32>,
}

const MARKER: &str = "drc-lint: allow(";

/// Extracts every suppression marker from a scanned file.
///
/// A marker must be the *start* of its comment (`// drc-lint: allow(…)`) —
/// prose that mentions the syntax mid-sentence, or doc examples quoting a
/// full marker line (whose comment body then starts with `// `), do not
/// parse as suppressions.
pub fn suppressions(scan: &Scan) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in &scan.comments {
        let trimmed = c.text.trim_start();
        if !trimmed.starts_with(MARKER) {
            continue;
        }
        let at = c.text.find(MARKER).unwrap_or(0);
        let after = &c.text[at + MARKER.len()..];
        let Some(close) = after.find(')') else {
            // Malformed marker: record it with no rules so the engine can
            // flag it.
            out.push(Suppression {
                line: c.line,
                rules: Vec::new(),
                justification: String::new(),
                applies_to: vec![c.line],
            });
            continue;
        };
        let rules: Vec<String> = after[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let mut justification = after[close + 1..].trim().to_string();
        for sep in [':', '-', '—'] {
            justification = justification
                .trim_start_matches(sep)
                .trim_start()
                .to_string();
        }
        // A justification may continue on the immediately following comment
        // lines of the same block.
        let mut next_line = c.end_line + 1;
        while scan.is_comment_only_line(next_line) {
            let cont = scan.comment_text_on(next_line);
            if cont.contains(MARKER) {
                break;
            }
            justification.push(' ');
            justification.push_str(cont.trim());
            next_line += 1;
        }
        // The marker applies to its own line(s) and the next code line.
        let mut applies_to: Vec<u32> = (c.line..=c.end_line).collect();
        let mut l = c.end_line + 1;
        while l <= scan.line_count {
            let has_code = scan
                .code_lines
                .get((l - 1) as usize)
                .copied()
                .unwrap_or(false);
            if has_code {
                applies_to.push(l);
                break;
            }
            if !scan.is_comment_only_line(l) {
                break; // blank line ends the marker's reach
            }
            applies_to.push(l);
            l += 1;
        }
        out.push(Suppression {
            line: c.line,
            rules,
            justification: justification.trim().to_string(),
            applies_to,
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Per-file checks.
// ---------------------------------------------------------------------------

/// Everything a single-file pass produces; target-feature call checking
/// needs a second, cross-file pass (see [`check_target_feature_calls`]).
#[derive(Debug, Default)]
pub struct FileCheck {
    /// Rule violations (suppressions not yet applied).
    pub findings: Vec<Finding>,
    /// Unsafe inventory entries for this file.
    pub unsafe_sites: Vec<UnsafeSite>,
    /// `#[target_feature]` functions defined in this file.
    pub target_feature_fns: Vec<TargetFeatureFn>,
}

/// Runs every single-file rule over one scanned file.
pub fn check_file(path: &str, scan: &Scan) -> FileCheck {
    let class = classify(path);
    let mut out = FileCheck::default();

    check_unsafe_hygiene(path, scan, &mut out);
    collect_target_feature_fns(path, scan, &mut out);

    if !class.vendor {
        check_lossy_casts(path, scan, &mut out);
    }
    if !class.vendor && class.section == "src" {
        if DETERMINISM_CRATES.contains(&class.crate_key.as_str()) {
            check_determinism(path, scan, &mut out);
        }
        if PANIC_CRATES.contains(&class.crate_key.as_str()) {
            check_panic_hygiene(path, scan, &mut out);
        }
        // Unlike the ident rules this one is workspace-wide: the repro
        // contract (byte-identical output at every harness width) spans
        // every crate that touches the worker pool, `core` and `gf`
        // included.
        check_parallel_float_reduction(path, scan, &mut out);
    }
    out
}

/// Flags `+=`/`-=` statements with float evidence inside a parallel region.
///
/// The cell harness guarantees byte-identical repro output at every fan-out
/// width *because* no floating-point reduction happens across concurrently
/// scheduled work: every sum runs serially inside one cell and cells merge
/// in fixed order after the join. A float accumulation written inside a
/// `spawn`/`scope`/`join`-style call would reintroduce scheduling-order
/// dependence (float addition is not associative), so it is flagged here.
///
/// Evidence is lexical: the compound-assignment statement must mention a
/// float literal, `f64`/`f32`, a float-returning method, or an identifier
/// the file elsewhere declares as float (`x: f64` or `let mut x = 0.0`).
/// Integer accumulators (offsets, counters) inside parallel regions are
/// fine and do not fire.
fn check_parallel_float_reduction(path: &str, scan: &Scan, out: &mut FileCheck) {
    let toks = &scan.tokens;
    // Identifiers the file declares as float-typed: `name: f64`/`f32`
    // (params, lets, fields) and `name = <float literal>` initialisers.
    // Same-named integers elsewhere would inherit the mark — acceptable for
    // a lexical pass; a justified suppression marker settles disputes.
    let mut floaty_idents: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let typed_float = is_punct(toks.get(i + 1), ":")
            && matches!(toks.get(i + 2), Some(n) if n.kind == TokKind::Ident
                && (n.text == "f64" || n.text == "f32"));
        let float_init = is_punct(toks.get(i + 1), "=")
            && matches!(toks.get(i + 2), Some(n) if n.kind == TokKind::Float);
        if typed_float || float_init {
            floaty_idents.insert(t.text.as_str());
        }
    }
    // Collect the token ranges lexically inside parallel-entrypoint call
    // parentheses (the closure arguments and their bodies).
    let mut regions: Vec<(usize, usize, &str)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !is_punct(toks.get(i + 1), "(") {
            continue;
        }
        let Some(&entry) = PARALLEL_ENTRYPOINTS.iter().find(|e| **e == t.text) else {
            continue;
        };
        let mut depth = 0isize;
        let mut j = i + 1;
        while j < toks.len() {
            if toks[j].kind == TokKind::Punct {
                match toks[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        regions.push((i + 2, j, entry));
    }
    // Nested regions (a `spawn` inside a `scope`) overlap; map each token to
    // its innermost enclosing region so one accumulation yields one finding.
    let mut in_region: Vec<Option<&str>> = vec![None; toks.len()];
    for (start, end, entry) in regions {
        for slot in in_region.iter_mut().take(end.min(toks.len())).skip(start) {
            *slot = Some(entry);
        }
    }
    let mut k = 0usize;
    while k + 1 < toks.len() {
        let Some(entry) = in_region[k] else {
            k += 1;
            continue;
        };
        let compound = toks[k].kind == TokKind::Punct
            && matches!(toks[k].text.as_str(), "+" | "-")
            && is_punct(toks.get(k + 1), "=");
        if !compound || scan.is_test_line(toks[k].line) {
            k += 1;
            continue;
        }
        // Statement bounds: from the previous `;`/`{`/`}` to the next `;`
        // (or end of file), so the float evidence must sit on the
        // accumulation itself, not elsewhere in the closure.
        let mut s = k;
        while s > 0 {
            let p = &toks[s - 1];
            if p.kind == TokKind::Punct && matches!(p.text.as_str(), ";" | "{" | "}") {
                break;
            }
            s -= 1;
        }
        let mut e = k + 2;
        while e < toks.len() {
            if toks[e].kind == TokKind::Punct && toks[e].text == ";" {
                break;
            }
            e += 1;
        }
        let floaty = toks[s..e].iter().any(|t| match t.kind {
            TokKind::Float => true,
            TokKind::Ident => {
                t.text == "f64"
                    || t.text == "f32"
                    || FLOAT_METHODS.contains(&t.text.as_str())
                    || floaty_idents.contains(t.text.as_str())
            }
            _ => false,
        });
        if floaty {
            out.findings.push(Finding {
                path: path.to_string(),
                line: toks[k].line,
                rule: "parallel-float-reduction",
                message: format!(
                    "float accumulation inside a `{entry}(…)` parallel region: reduction \
                     order follows the scheduler and float addition is not associative, so \
                     repro output stops being byte-identical across harness widths — \
                     accumulate serially per cell and merge in fixed order after the join"
                ),
            });
        }
        k = e;
    }
}

fn check_determinism(path: &str, scan: &Scan, out: &mut FileCheck) {
    let toks = &scan.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if let Some((_, why)) = NONDETERMINISM_IDENTS
            .iter()
            .find(|(name, _)| *name == t.text)
        {
            out.findings.push(Finding {
                path: path.to_string(),
                line: t.line,
                rule: "determinism",
                message: format!("`{}`: {}", t.text, why),
            });
        }
        // `rand::random` — ambient OS-seeded convenience RNG.
        if t.text == "rand" && is_punct(toks.get(i + 1), ":") && is_punct(toks.get(i + 2), ":") {
            if let Some(next) = toks.get(i + 3) {
                if next.kind == TokKind::Ident && next.text == "random" {
                    out.findings.push(Finding {
                        path: path.to_string(),
                        line: t.line,
                        rule: "determinism",
                        message: "`rand::random`: ambient OS-seeded RNG; use a seeded ChaCha rng"
                            .to_string(),
                    });
                }
            }
        }
    }
}

/// Whether an adjacent SAFETY comment covers an `unsafe` token on `line`.
///
/// Accepted: a comment containing `SAFETY:` on the same line, or in the
/// contiguous comment/attribute block immediately above; for `unsafe fn`,
/// a doc comment containing `# Safety` above the signature also counts.
fn has_adjacent_safety(scan: &Scan, line: u32, is_fn: bool) -> bool {
    let accepts = |text: &str| text.contains("SAFETY:") || (is_fn && text.contains("# Safety"));
    if accepts(&scan.comment_text_on(line)) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        if scan.is_comment_only_line(l) {
            if accepts(&scan.comment_text_on(l)) {
                return true;
            }
            // Part of a contiguous doc/comment block: keep walking up.
        } else if scan.is_attr_only_line(l) {
            // Attributes may sit between the comment and the item
            // (e.g. `#[target_feature]`); an attr line can still carry a
            // trailing SAFETY comment.
            if accepts(&scan.comment_text_on(l)) {
                return true;
            }
        } else {
            return false;
        }
        l -= 1;
    }
    false
}

fn check_unsafe_hygiene(path: &str, scan: &Scan, out: &mut FileCheck) {
    let toks = &scan.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        let kind = match toks.get(i + 1) {
            Some(n) if n.kind == TokKind::Ident && n.text == "fn" => "fn",
            Some(n) if n.kind == TokKind::Ident && n.text == "extern" => "fn",
            Some(n) if n.kind == TokKind::Ident && n.text == "impl" => "impl",
            Some(n) if n.kind == TokKind::Ident && n.text == "trait" => "trait",
            Some(n) if n.kind == TokKind::Punct && n.text == "{" => "block",
            _ => "other",
        };
        let has_safety = has_adjacent_safety(scan, t.line, kind == "fn");
        out.unsafe_sites.push(UnsafeSite {
            path: path.to_string(),
            line: t.line,
            kind,
            has_safety,
        });
        if !has_safety {
            out.findings.push(Finding {
                path: path.to_string(),
                line: t.line,
                rule: "unsafe-hygiene",
                message: format!(
                    "`unsafe {}` without an adjacent `// SAFETY:` comment{}",
                    kind,
                    if kind == "fn" {
                        " (or `/// # Safety` doc section)"
                    } else {
                        ""
                    }
                ),
            });
        }
    }
}

fn collect_target_feature_fns(path: &str, scan: &Scan, out: &mut FileCheck) {
    let toks = &scan.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Ident && t.text == "target_feature" {
            // Walk forward to the next `fn <name>` (skipping the rest of
            // the attribute and any further attributes).
            let mut j = i + 1;
            while j < toks.len() {
                if toks[j].kind == TokKind::Ident && toks[j].text == "fn" {
                    if let Some(name_tok) = toks.get(j + 1) {
                        if name_tok.kind == TokKind::Ident {
                            out.target_feature_fns.push(TargetFeatureFn {
                                path: path.to_string(),
                                line: name_tok.line,
                                name: name_tok.text.clone(),
                            });
                            if !path.ends_with(DISPATCH_MODULE) {
                                out.findings.push(Finding {
                                    path: path.to_string(),
                                    line: name_tok.line,
                                    rule: "target-feature-gating",
                                    message: format!(
                                        "`#[target_feature]` fn `{}` defined outside the kernel \
                                         dispatch module ({DISPATCH_MODULE})",
                                        name_tok.text
                                    ),
                                });
                            }
                        }
                    }
                    i = j;
                    break;
                }
                j += 1;
            }
        }
        i += 1;
    }
}

/// Cross-file pass: calls to `#[target_feature]` functions from anywhere
/// but the dispatch module are violations — safe code must go through the
/// feature-detected [`DISPATCH_MODULE`] wrappers.
pub fn check_target_feature_calls(
    path: &str,
    scan: &Scan,
    fns: &[TargetFeatureFn],
) -> Vec<Finding> {
    if path.ends_with(DISPATCH_MODULE) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let toks = &scan.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if !fns.iter().any(|f| f.name == t.text) {
            continue;
        }
        // Require a call shape (`name(…)`) so a doc mention or a same-named
        // local is not flagged.
        if is_punct(toks.get(i + 1), "(") {
            out.push(Finding {
                path: path.to_string(),
                line: t.line,
                rule: "target-feature-gating",
                message: format!(
                    "call to `#[target_feature]` fn `{}` outside {DISPATCH_MODULE}; route it \
                     through the kernel dispatch wrappers",
                    t.text
                ),
            });
        }
    }
    out
}

fn is_punct(t: Option<&Tok>, text: &str) -> bool {
    matches!(t, Some(t) if t.kind == TokKind::Punct && t.text == text)
}

// ---------------------------------------------------------------------------
// Lossy float casts.
// ---------------------------------------------------------------------------

/// Maps each token index to the name of the innermost enclosing `fn`.
fn enclosing_fns(toks: &[Tok]) -> Vec<Option<String>> {
    let mut out = vec![None; toks.len()];
    let mut stack: Vec<(String, usize)> = Vec::new(); // (name, depth at body)
    let mut depth = 0usize;
    let mut pending: Option<String> = None;
    for (i, t) in toks.iter().enumerate() {
        match (t.kind, t.text.as_str()) {
            (TokKind::Ident, "fn") => {
                if let Some(name) = toks.get(i + 1) {
                    if name.kind == TokKind::Ident {
                        pending = Some(name.text.clone());
                    }
                }
            }
            (TokKind::Punct, "{") => {
                depth += 1;
                if let Some(name) = pending.take() {
                    stack.push((name, depth));
                }
            }
            (TokKind::Punct, "}") => {
                if let Some((_, d)) = stack.last() {
                    if *d == depth {
                        stack.pop();
                    }
                }
                depth = depth.saturating_sub(1);
            }
            (TokKind::Punct, ";") => {
                // A bodyless signature (trait method) never opens a frame.
                pending = None;
            }
            _ => {}
        }
        out[i] = stack.last().map(|(n, _)| n.clone());
    }
    out
}

/// Collects the token indices of the cast operand ending just before the
/// `as` at `as_idx`, walking backward through field/method chains, paren
/// and bracket groups, `?`, `::` paths and chained `as` casts.
fn cast_operand(toks: &[Tok], as_idx: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut j = as_idx as isize - 1;
    let mut expect_primary = true;
    let mut after_group = false;
    while j >= 0 {
        let t = &toks[j as usize];
        if expect_primary {
            match t.kind {
                TokKind::Punct if t.text == ")" || t.text == "]" => {
                    let open = if t.text == ")" { "(" } else { "[" };
                    let close = &t.text;
                    let mut depth = 0isize;
                    while j >= 0 {
                        let u = &toks[j as usize];
                        if u.kind == TokKind::Punct {
                            if u.text == *close {
                                depth += 1;
                            } else if u.text == open {
                                depth -= 1;
                            }
                        }
                        out.push(j as usize);
                        j -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    expect_primary = false;
                    after_group = true;
                    continue;
                }
                TokKind::Ident | TokKind::Int | TokKind::Float | TokKind::Str | TokKind::Char => {
                    out.push(j as usize);
                    j -= 1;
                    expect_primary = false;
                    continue;
                }
                TokKind::Punct if t.text == "?" => {
                    out.push(j as usize);
                    j -= 1;
                    continue;
                }
                _ => break,
            }
        } else {
            // After a primary: continue only through `.`, `::`, `?` and a
            // chained `as`. A paren/bracket group may additionally be a call
            // or an index — consume the callee/base identifier too (but not
            // a control keyword, whose block this was instead).
            if after_group
                && t.kind == TokKind::Ident
                && !matches!(
                    t.text.as_str(),
                    "if" | "else"
                        | "match"
                        | "while"
                        | "for"
                        | "loop"
                        | "return"
                        | "in"
                        | "unsafe"
                        | "move"
                )
            {
                out.push(j as usize);
                j -= 1;
                after_group = false;
                continue;
            }
            after_group = false;
            if t.kind == TokKind::Punct && t.text == "." {
                out.push(j as usize);
                j -= 1;
                expect_primary = true;
                continue;
            }
            if t.kind == TokKind::Punct && t.text == ":" {
                if j >= 1
                    && toks[(j - 1) as usize].kind == TokKind::Punct
                    && toks[(j - 1) as usize].text == ":"
                {
                    out.push(j as usize);
                    out.push((j - 1) as usize);
                    j -= 2;
                    expect_primary = true;
                    continue;
                }
                break;
            }
            if t.kind == TokKind::Ident && t.text == "as" {
                out.push(j as usize);
                j -= 1;
                expect_primary = true;
                continue;
            }
            break;
        }
    }
    out
}

fn operand_is_floaty(toks: &[Tok], operand: &[usize]) -> bool {
    operand.iter().any(|&i| {
        let t = &toks[i];
        match t.kind {
            TokKind::Float => true,
            TokKind::Ident => {
                t.text == "f64" || t.text == "f32" || FLOAT_METHODS.contains(&t.text.as_str())
            }
            _ => false,
        }
    })
}

fn check_lossy_casts(path: &str, scan: &Scan, out: &mut FileCheck) {
    let toks = &scan.tokens;
    let fns = enclosing_fns(toks);
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "as" {
            continue;
        }
        let Some(target) = toks.get(i + 1) else {
            continue;
        };
        if target.kind != TokKind::Ident || !matches!(target.text.as_str(), "u64" | "usize" | "u32")
        {
            continue;
        }
        let operand = cast_operand(toks, i);
        if !operand_is_floaty(toks, &operand) {
            continue;
        }
        if let Some(Some(name)) = fns.get(i) {
            if CAST_ALLOWLIST_FNS.contains(&name.as_str()) {
                continue;
            }
        }
        out.findings.push(Finding {
            path: path.to_string(),
            line: t.line,
            rule: "lossy-float-cast",
            message: format!(
                "float expression cast `as {}` truncates silently (the PR 3 byte-accounting bug \
                 class); route it through `scale_bytes` or round/clamp explicitly",
                target.text
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// Panic hygiene.
// ---------------------------------------------------------------------------

fn check_panic_hygiene(path: &str, scan: &Scan, out: &mut FileCheck) {
    let toks = &scan.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || scan.is_test_line(t.line) {
            continue;
        }
        let flagged = match t.text.as_str() {
            "panic" => is_punct(toks.get(i + 1), "!"),
            "unwrap" => {
                i > 0
                    && is_punct(toks.get(i - 1), ".")
                    && is_punct(toks.get(i + 1), "(")
                    && is_punct(toks.get(i + 2), ")")
            }
            "expect" => i > 0 && is_punct(toks.get(i - 1), ".") && is_punct(toks.get(i + 1), "("),
            _ => false,
        };
        if flagged {
            out.findings.push(Finding {
                path: path.to_string(),
                line: t.line,
                rule: "panic-hygiene",
                message: format!(
                    "`{}` in non-test library code; errors here are typed (the PR 6 silent-miss \
                     lesson) — return a crate error instead",
                    if t.text == "panic" {
                        "panic!".to_string()
                    } else {
                        format!(".{}()", t.text)
                    }
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn classify_paths() {
        assert_eq!(classify("crates/sim/src/lib.rs").crate_key, "sim");
        assert_eq!(classify("crates/sim/src/lib.rs").section, "src");
        assert_eq!(classify("crates/gf/tests/proptests.rs").section, "tests");
        assert!(classify("vendor/rayon/src/lib.rs").vendor);
        assert_eq!(classify("src/lib.rs").crate_key, "root");
        assert_eq!(classify("tests/e2e.rs").section, "tests");
    }

    #[test]
    fn determinism_fires_on_hashmap_in_sim_crates_only() {
        let src = "use std::collections::HashMap;\n";
        let hit = check_file("crates/sim/src/lib.rs", &scan(src));
        assert_eq!(rules_of(&hit.findings), ["determinism"]);
        let miss = check_file("crates/core/src/lib.rs", &scan(src));
        assert!(miss.findings.is_empty(), "core is out of determinism scope");
        let bench = check_file("crates/bench/benches/x.rs", &scan(src));
        assert!(bench.findings.is_empty());
    }

    #[test]
    fn determinism_ignores_comments_and_strings() {
        let src = "// a HashMap would be wrong here\nlet s = \"Instant::now\";\n";
        let out = check_file("crates/hdfs/src/fs.rs", &scan(src));
        assert!(out.findings.is_empty());
    }

    #[test]
    fn parallel_float_reduction_fires_on_float_accumulation_in_scope() {
        let src = "fn f(xs: &[f64]) -> f64 {\n    let mut sum = 0.0;\n    rayon::scope(|s| {\n        for &x in xs {\n            s.spawn(|_| sum += x * 2.0);\n        }\n    });\n    sum\n}\n";
        let out = check_file("crates/core/src/lib.rs", &scan(src));
        assert!(
            rules_of(&out.findings).contains(&"parallel-float-reduction"),
            "{:?}",
            out.findings
        );
    }

    #[test]
    fn parallel_float_reduction_spares_integer_accumulators_and_serial_sums() {
        // Integer offset bookkeeping inside a scope is deterministic.
        let ints = "fn f(n: usize) {\n    rayon::scope(|s| {\n        let mut off = 0usize;\n        for _ in 0..n {\n            off += 64;\n            s.spawn(move |_| work(off));\n        }\n    });\n}\n";
        let out = check_file("crates/gf/src/slice.rs", &scan(ints));
        assert!(out.findings.is_empty(), "{:?}", out.findings);

        // A serial float sum outside any parallel region is the sanctioned
        // shape (per-cell accumulation, fixed-order merge).
        let serial = "fn f(xs: &[f64]) -> f64 {\n    let mut sum = 0.0;\n    for &x in xs {\n        sum += x;\n    }\n    sum\n}\n";
        let out = check_file("crates/core/src/experiments/fig3.rs", &scan(serial));
        assert!(out.findings.is_empty(), "{:?}", out.findings);

        // String/path `join` calls never carry a float `+=` in their parens.
        let joins = "fn f(parts: &[String]) -> String {\n    parts.join(\", \")\n}\n";
        let out = check_file("crates/core/src/render.rs", &scan(joins));
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn parallel_float_reduction_needs_float_evidence_on_the_statement() {
        // The closure mentions f64 elsewhere, but the `+=` statement itself
        // is integral: no finding.
        let src = "fn f(n: u64) {\n    rayon::scope(|s| {\n        s.spawn(move |_| {\n            let r: f64 = rate();\n            let mut total = 0u64;\n            total += n;\n            store(r, total);\n        });\n    });\n}\n";
        let out = check_file("crates/hdfs/src/fs.rs", &scan(src));
        assert!(
            !rules_of(&out.findings).contains(&"parallel-float-reduction"),
            "{:?}",
            out.findings
        );
    }

    #[test]
    fn unsafe_block_requires_safety_comment() {
        let bad = "fn f() {\n    unsafe { do_it() }\n}\n";
        let out = check_file("crates/gf/src/kernel.rs", &scan(bad));
        assert_eq!(rules_of(&out.findings), ["unsafe-hygiene"]);
        assert_eq!(out.unsafe_sites.len(), 1);
        assert!(!out.unsafe_sites[0].has_safety);

        let good = "fn f() {\n    // SAFETY: lengths checked above.\n    unsafe { do_it() }\n}\n";
        let out = check_file("crates/gf/src/kernel.rs", &scan(good));
        assert!(out.findings.is_empty());
        assert!(out.unsafe_sites[0].has_safety);
    }

    #[test]
    fn unsafe_fn_accepts_doc_safety_section_above_attributes() {
        let src = "/// # Safety\n/// Caller must check lengths.\n#[target_feature(enable = \"avx2\")]\nunsafe fn g(x: &mut [u8]) {}\n";
        let out = check_file("crates/gf/src/kernel.rs", &scan(src));
        assert!(rules_of(&out.findings).is_empty(), "{:?}", out.findings);
        assert_eq!(out.unsafe_sites[0].kind, "fn");
        assert!(out.unsafe_sites[0].has_safety);
    }

    #[test]
    fn unsafe_impl_requires_safety() {
        let src = "unsafe impl Send for X {}\n";
        let out = check_file("crates/sim/src/lib.rs", &scan(src));
        assert_eq!(rules_of(&out.findings), ["unsafe-hygiene"]);
        assert_eq!(out.unsafe_sites[0].kind, "impl");
    }

    #[test]
    fn target_feature_fn_outside_dispatch_module_is_flagged() {
        let src = "#[target_feature(enable = \"avx2\")]\nunsafe fn fast(x: &mut [u8]) {}\n";
        let out = check_file("crates/codes/src/lib.rs", &scan(src));
        assert!(rules_of(&out.findings).contains(&"target-feature-gating"));
        // In the dispatch module the definition is fine.
        let ok = check_file("crates/gf/src/kernel.rs", &scan(src));
        assert!(!rules_of(&ok.findings).contains(&"target-feature-gating"));
        assert_eq!(ok.target_feature_fns[0].name, "fast");
    }

    #[test]
    fn target_feature_calls_flagged_outside_dispatch_module() {
        let fns = vec![TargetFeatureFn {
            path: "crates/gf/src/kernel.rs".to_string(),
            line: 1,
            name: "mul_acc_avx2_impl".to_string(),
        }];
        let caller = "fn f() { unsafe { mul_acc_avx2_impl(d, s, c) } }\n";
        let bad = check_target_feature_calls("crates/codes/src/lib.rs", &scan(caller), &fns);
        assert_eq!(rules_of(&bad), ["target-feature-gating"]);
        let ok = check_target_feature_calls("crates/gf/src/kernel.rs", &scan(caller), &fns);
        assert!(ok.is_empty());
        // A bare mention (no call parens) is not flagged.
        let mention = "// mul_acc_avx2_impl\nlet name = \"mul_acc_avx2_impl\";\n";
        assert!(
            check_target_feature_calls("crates/codes/src/x.rs", &scan(mention), &fns).is_empty()
        );
    }

    #[test]
    fn lossy_cast_flags_float_operands_only() {
        let bad = "fn f(x: f64) -> u64 { (x * 1.5) as u64 }\n";
        let out = check_file("crates/mapreduce/src/engine.rs", &scan(bad));
        assert_eq!(rules_of(&out.findings), ["lossy-float-cast"]);

        let bad2 = "fn f(x: f64) -> u64 { x.ceil() as u64 }\n";
        let out = check_file("crates/sim/src/lib.rs", &scan(bad2));
        assert_eq!(rules_of(&out.findings), ["lossy-float-cast"]);

        let chained = "fn f(b: u64) -> u64 { b as f64 as u64 }\n";
        let out = check_file("crates/sim/src/lib.rs", &scan(chained));
        assert_eq!(rules_of(&out.findings), ["lossy-float-cast"]);

        let fine = "fn f(x: u8) -> usize { x as usize }\n";
        let out = check_file("crates/sim/src/lib.rs", &scan(fine));
        assert!(out.findings.is_empty());

        let int_math = "fn f(a: u64, b: u64) -> u32 { (a + b) as u32 }\n";
        let out = check_file("crates/sim/src/lib.rs", &scan(int_math));
        assert!(out.findings.is_empty());
    }

    #[test]
    fn lossy_cast_respects_the_allowlisted_helpers() {
        let src = "fn scale_bytes(b: u64, r: f64) -> u64 { (b as f64 * r).round() as u64 }\n";
        let out = check_file("crates/mapreduce/src/engine.rs", &scan(src));
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        let src = "fn from_secs_f64(s: f64) -> u64 { (s * 1e9).round() as u64 }\n";
        let out = check_file("crates/sim/src/time.rs", &scan(src));
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        let src = "fn secs_to_ns(s: f64) -> u64 { (s * 1e9).round() as u64 }\n";
        let out = check_file("crates/cluster/src/failure.rs", &scan(src));
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn lossy_cast_does_not_cross_binary_operators() {
        // Only `y.floor()` is the cast operand; `x` being float-free keeps
        // the `+` out of it.
        let src = "fn f(x: u64, y: f64) -> u64 { x + y.floor() as u64 }\n";
        let out = check_file("crates/sim/src/lib.rs", &scan(src));
        assert_eq!(rules_of(&out.findings), ["lossy-float-cast"]);
        let src2 = "fn f(x: u64, y: u64) -> u64 { x + y as u64 }\n";
        let out2 = check_file("crates/sim/src/lib.rs", &scan(src2));
        assert!(out2.findings.is_empty());
    }

    #[test]
    fn panic_hygiene_fires_in_core_src_outside_tests() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n#[cfg(test)]\nmod tests {\n    fn g(x: Option<u8>) -> u8 { x.expect(\"test-only\") }\n}\n";
        let out = check_file("crates/hdfs/src/fs.rs", &scan(src));
        assert_eq!(rules_of(&out.findings), ["panic-hygiene"]);
        assert_eq!(out.findings[0].line, 1);
    }

    #[test]
    fn panic_hygiene_skips_non_core_and_test_sections() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(check_file("crates/bench/src/lib.rs", &scan(src))
            .findings
            .is_empty());
        assert!(check_file("crates/gf/tests/t.rs", &scan(src))
            .findings
            .is_empty());
        assert!(check_file("vendor/rayon/src/lib.rs", &scan(src))
            .findings
            .is_empty());
    }

    #[test]
    fn panic_hygiene_distinguishes_unwrap_variants() {
        let src =
            "fn f(m: M) { m.lock().unwrap_or_else(|e| e.into_inner()); m.unwrap_or_default(); }\n";
        let out = check_file("crates/sim/src/lib.rs", &scan(src));
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn suppression_parsing_and_justification() {
        let src = "// drc-lint: allow(panic-hygiene): invariant guarded by the arena layout.\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let s = scan(src);
        let sup = suppressions(&s);
        assert_eq!(sup.len(), 1);
        assert_eq!(sup[0].rules, ["panic-hygiene"]);
        assert!(sup[0].justification.len() >= MIN_JUSTIFICATION);
        assert!(sup[0].applies_to.contains(&2));
    }

    #[test]
    fn suppression_without_justification_is_detectable() {
        let src = "// drc-lint: allow(determinism)\nuse std::collections::HashMap;\n";
        let sup = suppressions(&scan(src));
        assert_eq!(sup.len(), 1);
        assert!(sup[0].justification.len() < MIN_JUSTIFICATION);
    }

    #[test]
    fn marker_mentioned_mid_comment_or_quoted_in_doc_example_is_not_a_suppression() {
        // Prose mentioning the syntax mid-sentence.
        let prose = "//! Suppress with `// drc-lint: allow(<rule>): <why>` markers.\nfn f() {}\n";
        assert!(suppressions(&scan(prose)).is_empty());
        // A doc example quoting a full marker line: comment body starts `// `.
        let quoted =
            "//! // drc-lint: allow(panic-hygiene): example justification here.\nfn f() {}\n";
        assert!(suppressions(&scan(quoted)).is_empty());
    }

    #[test]
    fn multiline_justification_continues_on_following_comment_lines() {
        let src = "// drc-lint: allow(determinism): keyed by node id,\n// iteration order never reaches serialized output.\nuse std::collections::HashMap;\n";
        let sup = suppressions(&scan(src));
        assert_eq!(sup.len(), 1);
        assert!(sup[0].justification.contains("serialized output"));
        assert!(sup[0].applies_to.contains(&3));
    }
}
