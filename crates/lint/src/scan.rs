//! A comment/string/raw-string-aware Rust token scanner.
//!
//! This is deliberately **not** a parser: the vendored-stub environment has
//! no `syn`, and the rules in [`crate::rules`] only need a lexical view that
//! is *reliable* about what is code and what is not. The scanner guarantees:
//!
//! * text inside line comments, (nested) block comments, string literals,
//!   raw string literals (`r"…"`, `r#"…"#`, any hash count), byte strings
//!   and char literals never produces code tokens — `"unsafe"` in a string
//!   or `HashMap` in a comment cannot trip a rule;
//! * lifetimes (`'a`) are distinguished from char literals (`'a'`),
//!   including escaped chars (`'\''`, `'\u{41}'`);
//! * float literals are distinguished from integer literals (fractions,
//!   exponents, `_f64`/`_f32` suffixes; `1..2` ranges and tuple access do
//!   not produce phantom floats);
//! * every token and comment carries its 1-based source line, and
//!   `#[cfg(test)]` / `#[test]`-gated regions are mapped to line ranges so
//!   rules can exempt test code.
//!
//! Known (documented) approximations: attributes mixing `test` and `not`
//! (e.g. `#[cfg(all(test, not(miri)))]`) are treated as **non**-test, which
//! errs toward stricter linting; macro bodies are scanned as ordinary code.

/// Classification of one code token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character (`.`, `:`, `{`, …).
    Punct,
    /// Integer literal (any base, any non-float suffix).
    Int,
    /// Float literal (fraction, exponent or `f32`/`f64` suffix).
    Float,
    /// Lifetime (`'a`) — *not* a char literal.
    Lifetime,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// String, raw-string, byte-string or raw-byte-string literal.
    Str,
}

/// One code token with its source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token classification.
    pub kind: TokKind,
    /// The token's source text (literal text for strings, without quotes
    /// normalisation — rules never look inside strings).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

/// One comment with its source position and raw text (marker stripped).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the comment's first character.
    pub line: u32,
    /// 1-based line of the comment's last character (block comments span).
    pub end_line: u32,
    /// Comment body, excluding the `//` / `/*` markers.
    pub text: String,
    /// Whether this is a doc comment (`///`, `//!`, `/**`, `/*!`).
    pub doc: bool,
}

/// The scanner's output for one source file.
#[derive(Debug, Default)]
pub struct Scan {
    /// Code tokens in source order (comments and nothing-but-whitespace
    /// excluded; string/char literal *values* appear as opaque tokens).
    pub tokens: Vec<Tok>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
    /// Total number of source lines.
    pub line_count: u32,
    /// `lines_in_test_code[line-1]` — line is inside a `#[cfg(test)]` /
    /// `#[test]` region (or the whole file is, via `#![cfg(test)]`).
    pub test_lines: Vec<bool>,
    /// Lines whose code tokens all belong to attributes (`#[…]`).
    pub attr_only_lines: Vec<bool>,
    /// Lines carrying at least one code token.
    pub code_lines: Vec<bool>,
}

impl Scan {
    /// Whether 1-based `line` falls in a test-gated region.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines
            .get(line.saturating_sub(1) as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Concatenated comment text present on 1-based `line` (empty if none).
    pub fn comment_text_on(&self, line: u32) -> String {
        let mut out = String::new();
        for c in &self.comments {
            if c.line <= line && line <= c.end_line {
                out.push_str(&c.text);
                out.push('\n');
            }
        }
        out
    }

    /// Whether 1-based `line` has comment text but no code tokens.
    pub fn is_comment_only_line(&self, line: u32) -> bool {
        let idx = line.saturating_sub(1) as usize;
        let has_code = self.code_lines.get(idx).copied().unwrap_or(false);
        !has_code
            && self
                .comments
                .iter()
                .any(|c| c.line <= line && line <= c.end_line)
    }

    /// Whether 1-based `line` carries only attribute tokens.
    pub fn is_attr_only_line(&self, line: u32) -> bool {
        self.attr_only_lines
            .get(line.saturating_sub(1) as usize)
            .copied()
            .unwrap_or(false)
    }
}

/// Scans `source`, producing tokens, comments and region maps.
pub fn scan(source: &str) -> Scan {
    let mut lx = Lexer::new(source);
    lx.run();
    let line_count = lx.line;
    let mut scan = Scan {
        tokens: lx.tokens,
        comments: lx.comments,
        line_count,
        test_lines: vec![false; line_count as usize],
        attr_only_lines: vec![false; line_count as usize],
        code_lines: vec![false; line_count as usize],
    };
    mark_regions(&mut scan);
    scan
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    tokens: Vec<Tok>,
    comments: Vec<Comment>,
    src: std::marker::PhantomData<&'a ()>,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            tokens: Vec::new(),
            comments: Vec::new(),
            src: std::marker::PhantomData,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.tokens.push(Tok { kind, text, line });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(line),
                '\'' => self.quote(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ if is_ident_start(c) => self.ident_or_prefixed(line),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let doc = matches!(self.peek(0), Some('/') | Some('!'))
            && !(self.peek(0) == Some('/') && self.peek(1) == Some('/'));
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.comments.push(Comment {
            line,
            end_line: line,
            text,
            doc,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        let doc = matches!(self.peek(0), Some('*') | Some('!'))
            && !(self.peek(0) == Some('*') && self.peek(1) == Some('/'));
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.comments.push(Comment {
            line,
            end_line: self.line,
            text,
            doc,
        });
    }

    /// Ordinary (escaped) string literal; the opening `"` is current.
    fn string_literal(&mut self, line: u32) {
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    // Skip the escaped char so `\"` cannot close the string.
                    if let Some(e) = self.bump() {
                        text.push('\\');
                        text.push(e);
                    }
                }
                '"' => break,
                _ => text.push(c),
            }
        }
        self.push(TokKind::Str, text, line);
    }

    /// Raw string body after the prefix: `hashes` `#`s then `"` are current.
    fn raw_string(&mut self, line: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        debug_assert_eq!(self.peek(0), Some('"'));
        self.bump();
        let mut text = String::new();
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                // A closing quote must be followed by exactly `hashes` #s.
                let mut seen = 0usize;
                while seen < hashes && self.peek(0) == Some('#') {
                    self.bump();
                    seen += 1;
                }
                if seen == hashes {
                    break 'outer;
                }
                text.push('"');
                for _ in 0..seen {
                    text.push('#');
                }
            } else {
                text.push(c);
            }
        }
        self.push(TokKind::Str, text, line);
    }

    /// `'`-introduced token: lifetime or char literal.
    fn quote(&mut self, line: u32) {
        self.bump(); // the opening '
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume escape then scan to the
                // closing quote (covers '\n', '\'', '\u{…}').
                self.bump();
                self.bump();
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokKind::Char, String::new(), line);
            }
            Some(c) if is_ident_start(c) => {
                if self.peek(1) == Some('\'') {
                    // 'a' — a one-char literal.
                    self.bump();
                    self.bump();
                    self.push(TokKind::Char, c.to_string(), line);
                } else {
                    // 'abc — a lifetime: consume the identifier.
                    let mut name = String::new();
                    while let Some(c) = self.peek(0) {
                        if is_ident_continue(c) {
                            name.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokKind::Lifetime, name, line);
                }
            }
            Some(c) => {
                // Non-identifier char literal like ' ' or '{'.
                if self.peek(1) == Some('\'') {
                    self.bump();
                    self.bump();
                    self.push(TokKind::Char, c.to_string(), line);
                } else {
                    self.push(TokKind::Punct, "'".to_string(), line);
                }
            }
            None => self.push(TokKind::Punct, "'".to_string(), line),
        }
    }

    /// Number literal starting at the current digit.
    fn number(&mut self, line: u32) {
        let mut text = String::new();
        let mut float = false;
        // Radix prefixes are never floats.
        if self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x') | Some('X') | Some('b') | Some('o'))
        {
            text.push(self.bump().expect("digit present"));
            text.push(self.bump().expect("radix char present"));
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Int, text, line);
            return;
        }
        while let Some(c) = self.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Fractional part: `1.5` and trailing `1.` are floats; `1..2`
        // (range) and `1.max(…)` (method call) are not.
        if self.peek(0) == Some('.') {
            match self.peek(1) {
                Some(c) if c.is_ascii_digit() => {
                    float = true;
                    text.push('.');
                    self.bump();
                    while let Some(c) = self.peek(0) {
                        if c.is_ascii_digit() || c == '_' {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                Some('.') => {}
                Some(c) if is_ident_start(c) => {}
                _ => {
                    float = true;
                    text.push('.');
                    self.bump();
                }
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some('e') | Some('E')) {
            let (sign, first_digit) = match self.peek(1) {
                Some('+') | Some('-') => (1usize, self.peek(2)),
                other => (0usize, other),
            };
            if matches!(first_digit, Some(d) if d.is_ascii_digit()) {
                float = true;
                for _ in 0..(1 + sign) {
                    text.push(self.bump().expect("exponent chars present"));
                }
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Type suffix (`u64`, `f32`, …).
        let mut suffix = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                suffix.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if suffix.starts_with("f32") || suffix.starts_with("f64") {
            float = true;
        }
        text.push_str(&suffix);
        self.push(
            if float { TokKind::Float } else { TokKind::Int },
            text,
            line,
        );
    }

    /// Identifier, possibly a raw/byte-string prefix (`r"`, `r#"`, `b"`,
    /// `br#"`, `b'`).
    fn ident_or_prefixed(&mut self, line: u32) {
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match (name.as_str(), self.peek(0)) {
            ("r" | "br" | "b", Some('"')) => self.raw_or_plain_string(&name, line),
            ("r" | "br", Some('#')) if self.raw_hashes_then_quote() => self.raw_string(line),
            ("r", Some('#')) => {
                // Raw identifier (`r#unsafe`): one Ident token for the raw
                // name, so keyword rules cannot misfire on it.
                self.bump();
                let mut name = String::new();
                while let Some(c) = self.peek(0) {
                    if is_ident_continue(c) {
                        name.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokKind::Ident, format!("r#{name}"), line);
            }
            ("b", Some('\'')) => {
                self.quote(line);
                // Reclassify: `quote` pushed a Char/Lifetime; byte chars are
                // chars either way, lifetimes cannot follow `b`.
                if let Some(last) = self.tokens.last_mut() {
                    last.kind = TokKind::Char;
                }
            }
            _ => self.push(TokKind::Ident, name, line),
        }
    }

    /// Whether the chars at the cursor are `#…#"` (a raw-string guard).
    fn raw_hashes_then_quote(&self) -> bool {
        let mut i = 0usize;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        i > 0 && self.peek(i) == Some('"')
    }

    fn raw_or_plain_string(&mut self, prefix: &str, line: u32) {
        if prefix.starts_with('r') || prefix == "br" {
            self.raw_string(line);
        } else {
            // b"…" byte strings escape like ordinary strings.
            self.string_literal(line);
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

// ---------------------------------------------------------------------------
// Region marking: attributes, cfg(test), per-line code presence.
// ---------------------------------------------------------------------------

/// Whether the attribute tokens in `attr` (exclusive of `#`/brackets) gate a
/// test region. `test` must appear as an identifier and `not` must be absent
/// (so `#[cfg(not(test))]` errs toward "not test" — stricter linting).
fn attr_is_test(attr: &[Tok]) -> bool {
    let has_test = attr
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == "test");
    let has_not = attr
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == "not");
    has_test && !has_not
}

fn mark_regions(scan: &mut Scan) {
    let toks = &scan.tokens;
    let mark = |flags: &mut Vec<bool>, from: u32, to: u32| {
        for l in from..=to {
            if let Some(slot) = flags.get_mut(l.saturating_sub(1) as usize) {
                *slot = true;
            }
        }
    };

    for t in toks {
        if let Some(slot) = scan.code_lines.get_mut(t.line.saturating_sub(1) as usize) {
            *slot = true;
        }
    }

    // Pass 1: find attributes; record their spans and test gating.
    let mut attr_token = vec![false; toks.len()];
    let mut test_attr_ends: Vec<usize> = Vec::new(); // token index just past `]`
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokKind::Punct && toks[i].text == "#" {
            let mut j = i + 1;
            let inner = j < toks.len() && toks[j].kind == TokKind::Punct && toks[j].text == "!";
            if inner {
                j += 1;
            }
            if j < toks.len() && toks[j].kind == TokKind::Punct && toks[j].text == "[" {
                // Find the matching `]`.
                let mut depth = 0usize;
                let mut k = j;
                while k < toks.len() {
                    if toks[k].kind == TokKind::Punct {
                        match toks[k].text.as_str() {
                            "[" => depth += 1,
                            "]" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    k += 1;
                }
                let end = k.min(toks.len().saturating_sub(1));
                for slot in attr_token.iter_mut().take(end + 1).skip(i) {
                    *slot = true;
                }
                if attr_is_test(&toks[j + 1..end.max(j + 1)]) {
                    if inner {
                        // `#![cfg(test)]`: the whole file is a test region.
                        let last = scan.line_count;
                        mark(&mut scan.test_lines, 1, last);
                    } else {
                        test_attr_ends.push(end + 1);
                    }
                }
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }

    // Pass 2: attr-only lines = lines with code where every token is
    // attribute-owned.
    let mut line_has_nonattr = vec![false; scan.line_count as usize];
    for (idx, t) in toks.iter().enumerate() {
        if !attr_token[idx] {
            if let Some(slot) = line_has_nonattr.get_mut(t.line.saturating_sub(1) as usize) {
                *slot = true;
            }
        }
    }
    for (l, attr_only) in scan.attr_only_lines.iter_mut().enumerate() {
        *attr_only = scan.code_lines[l] && !line_has_nonattr[l];
    }

    // Pass 3: extend each test attribute over the item that follows it
    // (skipping further attributes), up to the item's closing `}` or `;`.
    for &start in &test_attr_ends {
        let mut j = start;
        // Skip trailing attributes between `#[cfg(test)]` and the item.
        while j < toks.len() && attr_token[j] {
            j += 1;
        }
        if j >= toks.len() {
            continue;
        }
        let first_line = toks[j].line;
        let mut depth = 0usize;
        let mut end_line = first_line;
        let mut k = j;
        while k < toks.len() {
            let t = &toks[k];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            end_line = t.line;
                            break;
                        }
                    }
                    ";" if depth == 0 => {
                        end_line = t.line;
                        break;
                    }
                    _ => {}
                }
            }
            end_line = t.line;
            k += 1;
        }
        mark(&mut scan.test_lines, first_line, end_line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = r##"let x = "unsafe { HashMap }"; let y = r#"panic!("no")"#;"##;
        let ids = idents(src);
        assert_eq!(ids, ["let", "x", "let", "y"]);
    }

    #[test]
    fn raw_strings_with_hashes_close_only_on_matching_hashes() {
        let src = "let s = r##\"inner \"# quote unsafe\"##; unsafe_marker();";
        let ids = idents(src);
        assert_eq!(ids, ["let", "s", "unsafe_marker"]);
        let strs: Vec<String> = scan(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(strs, ["inner \"# quote unsafe"]);
    }

    #[test]
    fn nested_block_comments_do_not_leak_code() {
        let src = "/* outer /* inner unsafe */ still comment HashMap */ fn ok() {}";
        assert_eq!(idents(src), ["fn", "ok"]);
        let s = scan(src);
        assert_eq!(s.comments.len(), 1);
        assert!(s.comments[0].text.contains("inner unsafe"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'a' }";
        let s = scan(src);
        let lifetimes: Vec<&Tok> = s
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        let chars: Vec<&Tok> = s
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "a");
    }

    #[test]
    fn escaped_char_literals_close_correctly() {
        let src = r"let q = '\''; let u = '\u{41}'; let n = '\n'; after();";
        assert_eq!(idents(src), ["let", "q", "let", "u", "let", "n", "after"]);
    }

    #[test]
    fn float_classification() {
        let kinds = |src: &str| -> Vec<TokKind> {
            scan(src)
                .tokens
                .iter()
                .filter(|t| matches!(t.kind, TokKind::Int | TokKind::Float))
                .map(|t| t.kind)
                .collect()
        };
        assert_eq!(kinds("1.5"), [TokKind::Float]);
        assert_eq!(kinds("1e9"), [TokKind::Float]);
        assert_eq!(kinds("2.5e-3"), [TokKind::Float]);
        assert_eq!(kinds("3f64"), [TokKind::Float]);
        assert_eq!(kinds("3_f32"), [TokKind::Float]);
        assert_eq!(kinds("1."), [TokKind::Float]);
        assert_eq!(kinds("42"), [TokKind::Int]);
        assert_eq!(kinds("42u64"), [TokKind::Int]);
        assert_eq!(kinds("0xff"), [TokKind::Int]);
        assert_eq!(kinds("0b1010"), [TokKind::Int]);
        // Ranges and method calls on int literals are not floats.
        assert_eq!(kinds("1..2"), [TokKind::Int, TokKind::Int]);
        assert_eq!(kinds("1.max(2)"), [TokKind::Int, TokKind::Int]);
    }

    #[test]
    fn cfg_test_region_covers_the_module() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\nfn also_live() {}\n";
        let s = scan(src);
        assert!(!s.is_test_line(1));
        assert!(s.is_test_line(3));
        assert!(s.is_test_line(4));
        assert!(s.is_test_line(5));
        assert!(!s.is_test_line(6));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }\n";
        let s = scan(src);
        assert!(!s.is_test_line(2));
    }

    #[test]
    fn test_attribute_with_more_attributes_between() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests {\n    fn f() {}\n}\n";
        let s = scan(src);
        assert!(s.is_test_line(3));
        assert!(s.is_test_line(4));
    }

    #[test]
    fn attr_only_lines_are_marked() {
        let src = "#[target_feature(enable = \"avx2\")]\nunsafe fn f() {}\n";
        let s = scan(src);
        assert!(s.is_attr_only_line(1));
        assert!(!s.is_attr_only_line(2));
    }

    #[test]
    fn comment_text_and_doc_flags() {
        let src = "/// # Safety\n/// must be called with care\nunsafe fn f() {}\n// SAFETY: checked above\nlet x = 1;\n";
        let s = scan(src);
        assert!(s.comments[0].doc);
        assert!(s.comments[0].text.contains("# Safety"));
        assert!(!s.comments[2].doc);
        assert!(s.comment_text_on(4).contains("SAFETY:"));
    }

    #[test]
    fn inner_cfg_test_marks_whole_file() {
        let src = "#![cfg(test)]\nfn helper() { x.unwrap(); }\n";
        let s = scan(src);
        assert!(s.is_test_line(1));
        assert!(s.is_test_line(2));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = "let a = b\"unsafe bytes\"; let c = b'x'; done();";
        assert_eq!(idents(src), ["let", "a", "let", "c", "done"]);
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"unterminated", "r#\"open", "/* open", "'", "1.", "b\""] {
            let _ = scan(src);
        }
    }
}
