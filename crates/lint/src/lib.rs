//! `drc_lint` — the workspace's static-analysis pass.
//!
//! The measurement story of this reproduction — virtual-time contention
//! headlines, byte-identical differential proptests, the `check_speedup`
//! gates — rests on two properties nothing used to enforce statically:
//! the simulator must be **deterministic**, and the unsafe hot paths (SIMD
//! GF kernels, the lifetime-erased persistent pool) must be **auditable**.
//! This crate enforces both, plus the two bug classes the repo has already
//! shipped (PR 3's silent `f64 → u64` byte-accounting truncation, PR 6's
//! silent index misses).
//!
//! * [`scan`] — a comment/string/raw-string-aware Rust token scanner (no
//!   `syn`; the vendored-stub environment has no crates.io),
//! * [`rules`] — the five rules plus inline-suppression parsing
//!   (`// drc-lint: allow(<rule>): <mandatory justification>`),
//! * [`engine`] — the workspace pass, the unsafe budget and the
//!   machine-readable `LINT.json` report (stamped via
//!   [`drc_bench::provenance`]).
//!
//! The `drc-lint` binary runs the pass over the workspace and exits
//! non-zero on any unsuppressed violation, making it a CI gate alongside
//! clippy. See `crates/lint/INTERNALS.md` for each rule's motivating bug.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod rules;
pub mod scan;
