//! Negative fixture tests: every rule must fire on its committed fixture.
//!
//! The fixtures under `tests/fixtures/` are excluded from the workspace scan
//! (`engine::SCAN_EXCLUDES`), so they can stay permanently violating; these
//! tests feed them to the engine under crafted virtual paths and assert the
//! expected findings. If a rule rots to the point of never firing, the
//! corresponding test here goes red — the gate cannot silently become a
//! no-op.

use drc_lint::engine::{run_files, FileInput, Report};

fn run_one(path: &str, source: &str) -> Report {
    run_files(&[FileInput {
        path: path.to_string(),
        source: source.to_string(),
    }])
}

fn rule_lines(report: &Report, rule: &str) -> Vec<u32> {
    report.findings_for(rule).iter().map(|f| f.line).collect()
}

#[test]
fn determinism_fires_on_fixture_in_sim_scope() {
    let src = include_str!("fixtures/determinism.rs");
    for scoped in [
        "crates/sim/src/fixture.rs",
        "crates/cluster/src/fixture.rs",
        "crates/hdfs/src/fixture.rs",
        "crates/mapreduce/src/fixture.rs",
        "crates/reliability/src/fixture.rs",
        "crates/codes/src/fixture.rs",
    ] {
        let report = run_one(scoped, src);
        let lines = rule_lines(&report, "determinism");
        assert!(
            lines.len() >= 6,
            "{scoped}: expected HashMap/HashSet/Instant/SystemTime/thread_rng/random \
             findings, got {lines:?}"
        );
    }
}

#[test]
fn determinism_is_scoped_to_sim_facing_crates() {
    let src = include_str!("fixtures/determinism.rs");
    // The same file under a bench path is out of scope: benches measure wall
    // time on purpose.
    let report = run_one("crates/bench/src/fixture.rs", src);
    assert!(
        report.findings_for("determinism").is_empty(),
        "bench code may use wall clocks: {:?}",
        report.findings
    );
}

#[test]
fn parallel_float_reduction_fires_on_fixture_and_spares_decoys() {
    let src = include_str!("fixtures/parallel_float_reduction.rs");
    let report = run_one("crates/core/src/fixture.rs", src);
    let lines = rule_lines(&report, "parallel-float-reduction");
    assert_eq!(
        lines.len(),
        3,
        "expected scoped_sum/spawned_mean/decremental findings (integer, \
         serial and string-join decoys exempt), got {lines:?}"
    );
}

#[test]
fn parallel_float_reduction_is_src_scoped() {
    let src = include_str!("fixtures/parallel_float_reduction.rs");
    // Benches and tests may reduce however they like; only library sources
    // feed the byte-identical repro path.
    let report = run_one("crates/core/benches/fixture.rs", src);
    assert!(
        report.findings_for("parallel-float-reduction").is_empty(),
        "{:?}",
        report.findings
    );
}

#[test]
fn unsafe_hygiene_fires_and_decoys_do_not_count() {
    let src = include_str!("fixtures/unsafe_hygiene.rs");
    let report = run_one("crates/gf/src/fixture.rs", src);
    let lines = rule_lines(&report, "unsafe-hygiene");
    // `no_safety_doc` (fn + its interior block) and `bare_block` violate;
    // the SAFETY-commented block and the `# Safety`-documented fn do not.
    assert_eq!(
        lines.len(),
        3,
        "expected the three uncommented unsafe sites, got {lines:?}"
    );
    // Decoys: `unsafe` inside strings/raw strings/comments is not code, so
    // the inventory must contain exactly the real sites (6: two fns, four
    // blocks), none of them past the `decoys` fn.
    assert_eq!(
        report.unsafe_inventory.len(),
        6,
        "inventory picked up a decoy: {:?}",
        report.unsafe_inventory
    );
    let commented = report
        .unsafe_inventory
        .iter()
        .filter(|s| s.has_safety)
        .count();
    assert_eq!(commented, 3, "{:?}", report.unsafe_inventory);
}

#[test]
fn target_feature_gating_fires_outside_dispatch_module() {
    let src = include_str!("fixtures/target_feature.rs");
    let report = run_one("crates/codes/src/fixture.rs", src);
    let lines = rule_lines(&report, "target-feature-gating");
    assert!(
        !lines.is_empty(),
        "a #[target_feature] definition outside {} must be flagged",
        drc_lint::rules::DISPATCH_MODULE
    );
    // The definition is still inventoried.
    assert_eq!(report.target_feature_fns.len(), 1);
    assert_eq!(report.target_feature_fns[0].name, "rogue_kernel_impl");
}

#[test]
fn target_feature_call_from_wrong_file_is_flagged() {
    // Definition in the dispatch module is fine; calling it from another
    // file is not.
    let def = "#[target_feature(enable = \"avx2\")]\n/// # Safety\n/// fixture\nunsafe fn k_impl(d: &mut [u8]) { unsafe { core::hint::unreachable_unchecked() } }\n";
    let caller = "fn f(d: &mut [u8]) { k_impl(d); }\n";
    let report = run_files(&[
        FileInput {
            path: drc_lint::rules::DISPATCH_MODULE.to_string(),
            source: def.to_string(),
        },
        FileInput {
            path: "crates/codes/src/caller.rs".to_string(),
            source: caller.to_string(),
        },
    ]);
    let findings = report.findings_for("target-feature-gating");
    assert_eq!(findings.len(), 1, "{:?}", report.findings);
    assert_eq!(findings[0].path, "crates/codes/src/caller.rs");
}

#[test]
fn lossy_cast_fires_on_fixture_and_spares_sanctioned_shapes() {
    let src = include_str!("fixtures/lossy_cast.rs");
    let report = run_one("crates/mapreduce/src/fixture.rs", src);
    let lines = rule_lines(&report, "lossy-float-cast");
    assert_eq!(
        lines.len(),
        3,
        "expected truncating_accounting/method_chain/chained_cast, got {lines:?}"
    );
}

#[test]
fn panic_hygiene_fires_on_fixture_outside_tests() {
    let src = include_str!("fixtures/panic_hygiene.rs");
    let report = run_one("crates/hdfs/src/fixture.rs", src);
    let lines = rule_lines(&report, "panic-hygiene");
    assert_eq!(
        lines.len(),
        3,
        "expected unwrap/expect/panic! findings (test mod exempt), got {lines:?}"
    );
}

#[test]
fn suppression_hygiene_fires_on_fixture() {
    let src = include_str!("fixtures/suppression_hygiene.rs");
    let report = run_one("crates/sim/src/fixture.rs", src);
    // The good marker silences its HashMap use.
    assert_eq!(report.suppressed.len(), 1, "{:?}", report.suppressed);
    // The unjustified marker leaves its HashSet finding live AND flags the
    // marker; unknown-rule, stale and malformed markers are each flagged.
    let hygiene = rule_lines(&report, "suppression-hygiene");
    assert!(
        hygiene.len() >= 4,
        "expected unjustified/unknown-rule/stale/malformed findings, got {hygiene:?}"
    );
    assert_eq!(rule_lines(&report, "determinism").len(), 1);
}

#[test]
fn clean_file_produces_no_findings() {
    let src = "//! A well-behaved module.\nuse std::collections::BTreeMap;\n\n/// Doubles.\npub fn double(x: u64) -> u64 {\n    x * 2\n}\n";
    let report = run_one("crates/sim/src/clean.rs", src);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert!(report.suppressed.is_empty());
    assert!(report.unsafe_inventory.is_empty());
}
