// Fixture: a #[target_feature] definition outside the dispatch module and a
// call to a dispatch-module kernel from the wrong file.
// NOT compiled — fed to the engine as text by tests/rules_fire.rs.

#[target_feature(enable = "avx2")]
unsafe fn rogue_kernel_impl(dst: &mut [u8]) {
    // SAFETY: fixture body.
    unsafe { core::hint::unreachable_unchecked() }
}

fn caller(dst: &mut [u8]) {
    // A mention without call parens must NOT be flagged:
    let name = "rogue_kernel_impl";
    let _ = name;
}
