// Fixture: silent float→int truncation casts, plus sanctioned shapes that
// must NOT be flagged. NOT compiled — fed to the engine as text by
// tests/rules_fire.rs.

fn truncating_accounting(bytes: u64, ratio: f64) -> u64 {
    (bytes as f64 * ratio) as u64
}

fn method_chain(x: f64) -> usize {
    x.sqrt() as usize
}

fn chained_cast(b: u64) -> u32 {
    b as f64 as u32
}

fn scale_bytes(bytes: u64, ratio: f64) -> u64 {
    // Allowlisted function name: explicitly rounded, never flagged.
    (bytes as f64 * ratio).round() as u64
}

fn int_only(a: u64, b: u64) -> u32 {
    (a + b) as u32
}
