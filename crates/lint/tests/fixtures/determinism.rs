// Fixture: every nondeterminism source the determinism rule must catch when
// this file is presented under a sim-facing path (e.g. crates/sim/src/…).
// NOT compiled — fed to the engine as text by tests/rules_fire.rs.

use std::collections::HashMap;
use std::collections::HashSet;
use std::time::Instant;
use std::time::SystemTime;

fn wall_clock_now() -> Instant {
    Instant::now()
}

fn epoch() -> SystemTime {
    SystemTime::now()
}

fn unordered_counts(keys: &[u32]) -> HashMap<u32, usize> {
    let mut m = HashMap::new();
    let mut seen = HashSet::new();
    for &k in keys {
        if seen.insert(k) {
            *m.entry(k).or_insert(0) += 1;
        }
    }
    m
}

fn os_entropy() -> u64 {
    let rng = rand::thread_rng();
    rand::random()
}
