// Fixture: unsafe without SAFETY comments, plus decoys that must NOT count.
// NOT compiled — fed to the engine as text by tests/rules_fire.rs.

unsafe fn no_safety_doc(p: *const u8) -> u8 {
    unsafe { *p }
}

fn bare_block(p: *const u8) -> u8 {
    unsafe { *p }
}

fn commented_block(p: *const u8) -> u8 {
    // SAFETY: commented block — must NOT be a violation (still inventoried).
    unsafe { *p }
}

/// # Safety
///
/// Caller must pass a valid pointer — doc section satisfies the fn rule.
unsafe fn doc_safety(p: *const u8) -> u8 {
    // SAFETY: contract forwarded from this fn's own `# Safety` section.
    unsafe { *p }
}

fn decoys() {
    let in_string = "unsafe { not code }";
    let raw = r#"unsafe fn also_not_code() {}"#;
    // unsafe mentioned in a comment is not code either.
    let _ = (in_string, raw);
}
