// Fixture: the parallel-float-reduction shapes the rule must catch — float
// accumulation lexically inside a parallel region, where the reduction order
// follows the scheduler and float addition is not associative.
// NOT compiled — fed to the engine as text by tests/rules_fire.rs.

fn scoped_sum(xs: &[f64]) -> f64 {
    let mut sum = 0.0;
    rayon::scope(|s| {
        for &x in xs {
            // VIOLATION: the spawn order decides the addition order.
            s.spawn(move |_| sum += x);
        }
    });
    sum
}

fn spawned_mean(samples: &[f64]) -> f64 {
    let mut total = 0.0;
    std::thread::scope(|s| {
        for chunk in samples.chunks(4) {
            s.spawn(|| {
                for &v in chunk {
                    // VIOLATION: f64 accumulation races across threads.
                    total += v * 0.5;
                }
            });
        }
    });
    total / samples.len() as f64
}

fn decremental(weights: &[f32]) -> f32 {
    let mut budget = 1.0f32;
    rayon::scope(|s| {
        s.spawn(move |_| {
            for &w in weights {
                // VIOLATION: compound subtraction is a reduction too.
                budget -= w;
            }
        });
    });
    budget
}

// Decoys the rule must NOT flag.

fn integer_offsets(n: usize) -> usize {
    let mut consumed = 0usize;
    rayon::scope(|s| {
        let mut off = 0usize;
        for _ in 0..n {
            // Integer bookkeeping is deterministic: no finding.
            off += 64;
            s.spawn(move |_| drop(off));
        }
        consumed += n;
    });
    consumed
}

fn serial_cell_sum(xs: &[f64]) -> f64 {
    // The sanctioned shape: the float sum runs serially inside one cell and
    // the harness merges cells in fixed order after the join.
    let mut sum = 0.0;
    for &x in xs {
        sum += x;
    }
    sum
}

fn string_join(parts: &[String]) -> String {
    parts.join(", ")
}
