// Fixture: panics in library code, plus test-region code that is exempt.
// NOT compiled — fed to the engine as text by tests/rules_fire.rs.

fn unwraps(x: Option<u8>) -> u8 {
    x.unwrap()
}

fn expects(x: Option<u8>) -> u8 {
    x.expect("fixture invariant")
}

fn panics(flag: bool) {
    if flag {
        panic!("fixture bail-out");
    }
}

fn not_flagged(x: Option<u8>) -> u8 {
    // unwrap_or / unwrap_or_else are total, not panicking.
    x.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
