// Fixture: every way a suppression marker can go wrong, plus one good one.
// NOT compiled — fed to the engine as text by tests/rules_fire.rs.

// drc-lint: allow(determinism): keyed by small dense ids, iteration order
// never reaches any serialized output or headline metric.
use std::collections::HashMap;

// drc-lint: allow(determinism)
use std::collections::HashSet;

// drc-lint: allow(no-such-rule): this rule id does not exist at all.
fn unknown_rule_target() {}

// drc-lint: allow(determinism): nothing on the next line violates it, so
// this marker is stale and must be flagged.
fn stale_target() {}

// drc-lint: allow(
fn malformed_marker_target() {}
