//! Property-based tests for the token scanner: it must never panic, must be
//! deterministic, and must keep its line bookkeeping consistent on arbitrary
//! input — including source that is not valid Rust at all. A lexer that
//! panics on a weird byte sequence would take the whole CI gate down with it.

use drc_lint::scan::{scan, TokKind};
use proptest::prelude::*;

/// Snippet alphabet biased toward the scanner's hard cases: quote and hash
/// interplay, comment openers/closers, escapes, lifetimes.
fn snippet() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("\"".to_string()),
        Just("'".to_string()),
        Just("r#\"".to_string()),
        Just("\"#".to_string()),
        Just("r##".to_string()),
        Just("//".to_string()),
        Just("/*".to_string()),
        Just("*/".to_string()),
        Just("\\".to_string()),
        Just("\n".to_string()),
        Just("b'".to_string()),
        Just("'a ".to_string()),
        Just("'x'".to_string()),
        Just("unsafe".to_string()),
        Just("fn f".to_string()),
        Just("1.5e3".to_string()),
        Just("1..2".to_string()),
        Just("{".to_string()),
        Just("}".to_string()),
        Just("#[cfg(test)]".to_string()),
        Just("é✓".to_string()),
    ]
}

fn source() -> impl Strategy<Value = String> {
    prop::collection::vec(snippet(), 0..40).prop_map(|parts| parts.concat())
}

proptest! {
    #[test]
    fn scan_never_panics_and_is_deterministic(src in source()) {
        let a = scan(&src);
        let b = scan(&src);
        prop_assert_eq!(a.tokens.len(), b.tokens.len());
        for (x, y) in a.tokens.iter().zip(&b.tokens) {
            prop_assert_eq!(x.kind, y.kind);
            prop_assert_eq!(&x.text, &y.text);
            prop_assert_eq!(x.line, y.line);
        }
        prop_assert_eq!(a.comments.len(), b.comments.len());
    }

    #[test]
    fn line_numbers_stay_in_range_and_monotonic(src in source()) {
        let s = scan(&src);
        let mut last = 0u32;
        for t in &s.tokens {
            prop_assert!(t.line >= 1);
            prop_assert!(t.line <= s.line_count.max(1));
            prop_assert!(t.line >= last, "token lines went backwards");
            last = t.line;
        }
        for c in &s.comments {
            prop_assert!(c.line >= 1 && c.end_line >= c.line);
            prop_assert!(c.end_line <= s.line_count.max(1));
        }
    }

    #[test]
    fn token_text_is_nonempty_and_within_source(src in source()) {
        let s = scan(&src);
        for t in &s.tokens {
            // Idents, numbers and puncts carry their literal source text;
            // string/char/lifetime tokens may be empty or normalised (an
            // empty `""` literal has an empty interior), so skip those.
            if matches!(
                t.kind,
                TokKind::Ident | TokKind::Int | TokKind::Float | TokKind::Punct
            ) {
                prop_assert!(!t.text.is_empty());
                prop_assert!(src.contains(&*t.text), "token {:?} not in source", t.text);
            }
        }
    }

    #[test]
    fn keywords_inside_strings_never_tokenize(
        payload in prop::collection::vec(prop_oneof![Just(' '), Just('a'), Just('z')], 0..20)
            .prop_map(|cs| cs.into_iter().collect::<String>())
    ) {
        // Whatever we embed in a string literal must come back as a single
        // Str token, never as idents — the decoy-resistance the unsafe and
        // panic rules rely on.
        let src = format!("let s = \"unsafe {payload}\";");
        let s = scan(&src);
        let unsafe_idents = s
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident && t.text == "unsafe")
            .count();
        prop_assert_eq!(unsafe_idents, 0);
        prop_assert!(s.tokens.iter().any(|t| t.kind == TokKind::Str));
    }
}
