//! The modeled cluster I/O fabric: per-node disks and NICs plus the shared
//! LAN, with bandwidths drawn from [`ClusterSpec`].

use std::sync::atomic::{AtomicBool, Ordering};

use drc_cluster::{ClusterSpec, NodeId};

use crate::resource::{Reservation, Resource};
use crate::time::{SimDuration, SimTime};

/// Availability of one modeled node's I/O resources.
///
/// This is the substrate-level signal a failure engine flips when a timed
/// failure or recovery event fires: layers that only hold the [`ClusterNet`]
/// (not the topology-level `Cluster`) can still ask whether a node is
/// serving. The flag is advisory for *issuance* — nothing stops a caller
/// from reserving a down node's disk, exactly as nothing stops a packet
/// being sent to a dead host — but [`ClusterNet::restore_node`] occupies the
/// node's resources through the outage window, so no reservation granted
/// after a recovery can pretend it ran while the node was dark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// The node's disk and NIC are serving.
    Up,
    /// The node is dark: a failure event took it down and no recovery has
    /// fired yet.
    Down,
}

/// The I/O resources of one data node.
#[derive(Debug)]
pub struct NodeIo {
    /// The node's disk (sequential bandwidth; reads and writes share it).
    pub disk: Resource,
    /// The node's network interface (ingress and egress share it, as on the
    /// single shared LAN of the paper's set-ups).
    pub nic: Resource,
}

impl NodeIo {
    /// Builds one node's resources from a cluster spec's per-node bandwidths.
    pub fn new(spec: &ClusterSpec) -> Self {
        NodeIo {
            disk: Resource::new(spec.disk_bandwidth_mbps),
            nic: Resource::new(spec.network_bandwidth_mbps),
        }
    }
}

/// The shared LAN fabric of a cluster: aggregate traffic queues through it
/// at `network_bandwidth_mbps × data_nodes`. [`ClusterNet`] builds its
/// fabric here, and every layer — HDFS writes/repairs/degraded reads and
/// the MapReduce engine's map waves and shuffle fetches — queues through
/// the same instance when they share a [`ClusterNet`].
pub fn fabric(spec: &ClusterSpec) -> Resource {
    Resource::new(spec.network_bandwidth_mbps * spec.data_nodes as f64)
}

/// A multi-resource transfer in the making: the operation must hold several
/// pipes (NICs, disks) at once and queue its bytes through the shared fabric.
///
/// [`Transfer::issue`] sequences the acquisitions — the operation starts once
/// every pipe is free, lasts the bottleneck pipe's service time (or longer if
/// the fabric is saturated), and holds every pipe for its whole duration —
/// and reports *per-pipe wait time*, so callers can attribute queueing delay
/// to the link that caused it (the contention accounting behind the MapReduce
/// engine's shuffle metrics).
///
/// Multi-pipe reservation is read-then-occupy, not atomic: it assumes a
/// single thread issues the virtual-time operations of one simulation (the
/// `&self` atomics exist so shared components can be held behind `&`
/// references, not for concurrent issuance). Two threads reserving
/// overlapping pipe sets concurrently could double-book a window.
///
/// # Example
///
/// ```
/// use drc_sim::{Resource, SimTime, Transfer};
///
/// let fabric = Resource::new(1000.0);
/// let src = Resource::new(100.0);
/// let dst = Resource::new(100.0);
/// // A first transfer makes the source busy for 1 s …
/// Transfer::new(&fabric, 100 << 20).via(&src).issue(SimTime::ZERO);
/// // … so a second transfer through the same source waits 1 s on it.
/// let out = Transfer::new(&fabric, 100 << 20)
///     .via(&src)
///     .via(&dst)
///     .issue(SimTime::ZERO);
/// assert_eq!(out.pipe_waits[0].as_secs_f64(), 1.0); // src was busy
/// assert_eq!(out.pipe_waits[1].as_secs_f64(), 0.0); // dst was free
/// assert_eq!(out.reservation.start.as_secs_f64(), 1.0);
/// ```
#[derive(Debug)]
pub struct Transfer<'a> {
    fabric: &'a Resource,
    bytes: u64,
    pipes: Vec<&'a Resource>,
}

/// What [`Transfer::issue`] granted, plus where the operation queued.
#[derive(Debug, Clone)]
pub struct TransferOutcome {
    /// The virtual-time window the transfer occupies end-to-end.
    pub reservation: Reservation,
    /// Per-pipe wait, in [`Transfer::via`] order: how long each pipe's
    /// earlier reservations pushed this transfer's start past its issue
    /// instant. Waits on different pipes cover the same wall-clock window
    /// when several pipes are busy simultaneously; each entry answers "how
    /// long would this pipe alone have delayed the start".
    pub pipe_waits: Vec<SimDuration>,
    /// Extra completion delay the saturated shared fabric added beyond the
    /// bottleneck pipe's service time (zero when the fabric kept up).
    pub fabric_delay: SimDuration,
}

impl<'a> Transfer<'a> {
    /// Starts describing a transfer of `bytes` that will queue through
    /// `fabric`.
    pub fn new(fabric: &'a Resource, bytes: u64) -> Self {
        Transfer {
            fabric,
            bytes,
            pipes: Vec::new(),
        }
    }

    /// Adds a pipe the transfer must hold for its whole duration.
    #[must_use]
    pub fn via(mut self, pipe: &'a Resource) -> Self {
        self.pipes.push(pipe);
        self
    }

    /// Issues the transfer at `now`: acquires every pipe, queues the bytes
    /// through the fabric, and reports the granted window plus per-link
    /// waits.
    pub fn issue(self, now: SimTime) -> TransferOutcome {
        let mut start = now;
        let mut pipe_waits = Vec::with_capacity(self.pipes.len());
        for pipe in &self.pipes {
            let free = pipe.next_free();
            pipe_waits.push(free.since(now));
            start = start.max(free);
        }
        let fabric_res = self.fabric.reserve_bytes(start, self.bytes);
        let slowest = self
            .pipes
            .iter()
            .map(|pipe| pipe.service_time(self.bytes))
            .max()
            .unwrap_or_default();
        let pipe_end = start + slowest;
        let end = pipe_end.max(fabric_res.end);
        for pipe in &self.pipes {
            pipe.occupy_until(end);
        }
        TransferOutcome {
            reservation: Reservation { start, end },
            pipe_waits,
            fabric_delay: end.since(pipe_end),
        }
    }
}

/// Reserves a set of pipes plus the shared fabric for one `bytes`-sized
/// operation issued at `now` (the [`Transfer`] path minus the wait report).
fn reserve_pipes(now: SimTime, pipes: &[&Resource], fabric: &Resource, bytes: u64) -> Reservation {
    let mut transfer = Transfer::new(fabric, bytes);
    for pipe in pipes {
        transfer = transfer.via(pipe);
    }
    transfer.issue(now).reservation
}

/// A node-to-node transfer: source disk + NIC, destination NIC + disk, and
/// the shared fabric (the stages stream concurrently).
pub fn transfer_between(
    now: SimTime,
    src: &NodeIo,
    dst: &NodeIo,
    fabric: &Resource,
    bytes: u64,
) -> Reservation {
    reserve_pipes(
        now,
        &[&src.disk, &src.nic, &dst.nic, &dst.disk],
        fabric,
        bytes,
    )
}

/// An inbound transfer from outside the modeled cluster (a client write, a
/// decoded block landing on a replacement): destination NIC + disk + fabric.
pub fn push_to(now: SimTime, dst: &NodeIo, fabric: &Resource, bytes: u64) -> Reservation {
    reserve_pipes(now, &[&dst.nic, &dst.disk], fabric, bytes)
}

/// An outbound transfer to a consumer outside the modeled cluster (a client
/// read, a helper block streaming to a reconstruction): source disk + NIC +
/// fabric.
pub fn pull_from(now: SimTime, src: &NodeIo, fabric: &Resource, bytes: u64) -> Reservation {
    reserve_pipes(now, &[&src.disk, &src.nic], fabric, bytes)
}

/// Splits a payload into `chunk`-byte pieces for a streamed, pipelined
/// transfer: every piece is `chunk` bytes except a final partial remainder.
///
/// A `chunk` of zero (or one at least as large as the payload) yields the
/// whole payload as a single piece, which is how callers express "don't
/// stream". A zero-byte payload yields nothing.
pub fn chunk_sizes(bytes: u64, chunk: u64) -> impl Iterator<Item = u64> {
    let step = if chunk == 0 { bytes.max(1) } else { chunk };
    (0..bytes.div_ceil(step)).map(move |i| step.min(bytes - i * step))
}

/// Issues a chunk train through a pipe set: chunk `i` is issued at
/// `starts[i]` (clamped to the pipes' FIFO availability and the previous
/// chunk's end), while the shared fabric carries the train as a **single
/// flow** — one reservation for the total payload, made at the first
/// chunk's granted start.
///
/// The single fabric flow is the load-bearing choice. Every [`Resource`]
/// grants FIFO in issuance order and never backfills, so reserving the
/// fabric chunk-by-chunk at each chunk's (late) start would walk
/// `next_free` to the train's end and serialise unrelated epoch-issued
/// transfers behind a fabric that is physically almost idle. One
/// total-bytes reservation at the train's start occupies the fabric
/// exactly as the equivalent monolithic transfer would; a saturated fabric
/// still delays the train — the final chunk's end is clamped to the fabric
/// reservation's end, exactly as [`Transfer::issue`] clamps a monolithic
/// transfer. A single-chunk train is therefore bit-identical to the
/// monolithic path.
///
/// Returns each chunk's completion instant.
///
/// # Panics
///
/// Panics if `starts` and `sizes` have different lengths.
fn reserve_train(
    starts: &[SimTime],
    pipes: &[&Resource],
    fabric: &Resource,
    sizes: &[u64],
) -> Vec<SimTime> {
    assert_eq!(starts.len(), sizes.len(), "one start per chunk");
    let Some(&first_requested) = starts.first() else {
        return Vec::new();
    };
    let mut first_start = first_requested;
    for pipe in pipes {
        first_start = first_start.max(pipe.next_free());
    }
    let total: u64 = sizes.iter().sum();
    let fabric_end = fabric.reserve_bytes(first_start, total).end;
    let mut ends = Vec::with_capacity(sizes.len());
    let mut prev = SimTime::ZERO;
    for (i, (&at, &clen)) in starts.iter().zip(sizes).enumerate() {
        let mut start = at.max(prev);
        for pipe in pipes {
            start = start.max(pipe.next_free());
        }
        let slowest = pipes
            .iter()
            .map(|pipe| pipe.service_time(clen))
            .max()
            .unwrap_or_default();
        let mut end = start + slowest;
        if i == sizes.len() - 1 {
            end = end.max(fabric_end);
        }
        for pipe in pipes {
            pipe.occupy_until(end);
        }
        ends.push(end);
        prev = end;
    }
    ends
}

/// The chunk-train form of [`pull_from`]: an outbound stream of
/// `sizes`-byte chunks, all issued at `now`, serving back-to-back on the
/// source's disk + NIC while the fabric carries the train as one flow.
/// Returns each chunk's completion instant, so a consumer can start
/// per-chunk downstream work (a store, a decode) the moment that chunk
/// lands instead of waiting for the whole payload.
pub fn pull_train(now: SimTime, src: &NodeIo, fabric: &Resource, sizes: &[u64]) -> Vec<SimTime> {
    let starts = vec![now; sizes.len()];
    reserve_train(&starts, &[&src.disk, &src.nic], fabric, sizes)
}

/// The chunk-train form of [`push_to`]: an inbound stream of `sizes`-byte
/// chunks where chunk `i` becomes available at `starts[i]` (typically the
/// instant an upstream fetch train delivered it), landing through the
/// destination's NIC + disk while the fabric carries the train as one
/// flow. Returns each chunk's completion instant.
///
/// # Panics
///
/// Panics if `starts` and `sizes` have different lengths.
pub fn push_train(
    starts: &[SimTime],
    dst: &NodeIo,
    fabric: &Resource,
    sizes: &[u64],
) -> Vec<SimTime> {
    reserve_train(starts, &[&dst.nic, &dst.disk], fabric, sizes)
}

/// Disk, NIC and shared-fabric resources for a whole cluster.
///
/// Built from the bandwidth figures of a [`ClusterSpec`]: each node gets a
/// disk and a NIC at the spec's per-node rates, and the LAN fabric moves
/// aggregate traffic at `network_bandwidth_mbps × data_nodes`. A transfer
/// holds its endpoints' resources for the bottleneck service time and queues
/// its bytes through the fabric, so transfers between disjoint node pairs
/// overlap while anything sharing a disk, a NIC or an oversubscribed fabric
/// serialises — exactly the contention the paper's degraded-read and repair
/// experiments measure.
#[derive(Debug)]
pub struct ClusterNet {
    nodes: Vec<NodeIo>,
    /// Per-node availability (`true` = up). Atomics so the shared model can
    /// be flipped behind `&self` by whichever layer drives failure events.
    up: Vec<AtomicBool>,
    fabric: Resource,
}

impl ClusterNet {
    /// Builds the resource model for a cluster spec (all nodes up).
    pub fn new(spec: &ClusterSpec) -> Self {
        let nodes: Vec<NodeIo> = (0..spec.data_nodes).map(|_| NodeIo::new(spec)).collect();
        let up = (0..nodes.len()).map(|_| AtomicBool::new(true)).collect();
        ClusterNet {
            nodes,
            up,
            fabric: fabric(spec),
        }
    }

    /// Number of modeled nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the model has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The I/O resources of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node is not part of the modeled cluster.
    pub fn node(&self, node: NodeId) -> &NodeIo {
        &self.nodes[node.0]
    }

    /// The shared LAN fabric.
    pub fn fabric(&self) -> &Resource {
        &self.fabric
    }

    /// The availability signal of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node is not part of the modeled cluster.
    pub fn node_state(&self, node: NodeId) -> NodeState {
        if self.up[node.0].load(Ordering::Acquire) {
            NodeState::Up
        } else {
            NodeState::Down
        }
    }

    /// Returns `true` if the node's resources are currently serving.
    pub fn is_node_up(&self, node: NodeId) -> bool {
        self.node_state(node) == NodeState::Up
    }

    /// Takes a node's disk and NIC out of service (a timed failure event
    /// fired). Reservations the node already granted are untouched — in a
    /// fail-stop model the bytes already "moved" in those windows are the
    /// issuing layer's to account for.
    pub fn take_node_down(&self, node: NodeId) {
        self.up[node.0].store(false, Ordering::Release);
    }

    /// Restores a node's disk and NIC at virtual instant `at` (a timed
    /// recovery event fired): the node is marked [`NodeState::Up`] and both
    /// resources are occupied through `at`, so no later reservation can be
    /// granted a window inside the outage.
    pub fn restore_node(&self, at: SimTime, node: NodeId) {
        let io = self.node(node);
        io.disk.occupy_until(at);
        io.nic.occupy_until(at);
        self.up[node.0].store(true, Ordering::Release);
    }

    /// Slows a node's disk and NIC down by `factor` (2.0 = half speed,
    /// 1.0 = nominal) for every reservation made from now on — the
    /// substrate half of a `Slowdown` failure-trace event.
    pub fn set_node_slowdown(&self, node: NodeId, factor: f64) {
        let io = self.node(node);
        io.disk.set_slowdown(factor);
        io.nic.set_slowdown(factor);
    }

    /// A local disk read (or write) of `bytes` on `node`, issued at `now`.
    pub fn disk_io(&self, now: SimTime, node: NodeId, bytes: u64) -> Reservation {
        self.node(node).disk.reserve_bytes(now, bytes)
    }

    /// A network transfer of `bytes` from `from`'s disk to `to`'s disk,
    /// issued at `now`.
    ///
    /// The transfer starts once every involved resource is free, lasts the
    /// bottleneck pipe's service time (or longer if the shared fabric is
    /// saturated by other traffic), and holds source disk + NIC, destination
    /// NIC + disk for its whole duration (the stages stream concurrently).
    pub fn transfer(&self, now: SimTime, from: NodeId, to: NodeId, bytes: u64) -> Reservation {
        transfer_between(now, self.node(from), self.node(to), &self.fabric, bytes)
    }

    /// Forgets every reservation, slowdown and availability flag (all
    /// resources idle and up at the epoch).
    pub fn reset(&self) {
        for n in &self.nodes {
            n.disk.reset();
            n.nic.reset();
        }
        for flag in &self.up {
            flag.store(true, Ordering::Release);
        }
        self.fabric.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> ClusterNet {
        ClusterNet::new(&ClusterSpec::simulation_25(4))
    }

    #[test]
    fn chunk_sizes_cover_payload_exactly() {
        assert_eq!(chunk_sizes(10, 4).collect::<Vec<_>>(), vec![4, 4, 2]);
        assert_eq!(chunk_sizes(8, 4).collect::<Vec<_>>(), vec![4, 4]);
        assert_eq!(chunk_sizes(3, 4).collect::<Vec<_>>(), vec![3]);
        assert_eq!(chunk_sizes(3, 0).collect::<Vec<_>>(), vec![3]);
        assert_eq!(chunk_sizes(3, u64::MAX).collect::<Vec<_>>(), vec![3]);
        assert_eq!(chunk_sizes(0, 4).count(), 0);
        assert_eq!(chunk_sizes(0, 0).count(), 0);
        let total: u64 = chunk_sizes(1 << 26, 300_000).sum();
        assert_eq!(total, 1 << 26);
    }

    #[test]
    fn single_chunk_train_is_bit_identical_to_the_monolithic_path() {
        let a = net();
        let b = net();
        let bytes = 37 << 20;
        // Pre-load identical traffic so pipes are busy at issuance.
        a.transfer(SimTime::ZERO, NodeId(0), NodeId(1), 8 << 20);
        b.transfer(SimTime::ZERO, NodeId(0), NodeId(1), 8 << 20);
        let pull = pull_from(SimTime::ZERO, a.node(NodeId(0)), a.fabric(), bytes);
        let train = pull_train(SimTime::ZERO, b.node(NodeId(0)), b.fabric(), &[bytes]);
        assert_eq!(train, vec![pull.end]);
        let push = push_to(pull.end, a.node(NodeId(1)), a.fabric(), bytes);
        let strain = push_train(&[pull.end], b.node(NodeId(1)), b.fabric(), &[bytes]);
        assert_eq!(strain, vec![push.end]);
        assert_eq!(
            a.node(NodeId(1)).disk.next_free(),
            b.node(NodeId(1)).disk.next_free()
        );
        assert_eq!(a.fabric().next_free(), b.fabric().next_free());
    }

    #[test]
    fn train_chunks_serve_back_to_back_and_cover_the_payload_time() {
        let net = net();
        let sizes = vec![16 << 20; 8]; // 128 MiB in 16 MiB chunks
        let ends = pull_train(SimTime::ZERO, net.node(NodeId(0)), net.fabric(), &sizes);
        assert_eq!(ends.len(), 8);
        assert!(ends.windows(2).all(|w| w[0] < w[1]), "chunks are ordered");
        // NIC-bound at 60 MiB/s: the train's tail matches the monolithic
        // transfer (modulo per-chunk ns rounding).
        let expect = 128.0 / 60.0;
        assert!((ends.last().unwrap().as_secs_f64() - expect).abs() < 1e-6);
        // …and the first chunk lands after one chunk's service time.
        assert!((ends[0].as_secs_f64() - 16.0 / 60.0).abs() < 1e-6);
    }

    #[test]
    fn trains_on_disjoint_nodes_do_not_couple_through_the_fabric() {
        // Regression: reserving the fabric chunk-by-chunk at each chunk's
        // late start walked `next_free` to the first train's end and
        // serialised the second (physically independent) train behind it.
        // A train is one fabric flow: both trains must end together.
        let net = net();
        let sizes = vec![1 << 20; 128];
        let a = pull_train(SimTime::ZERO, net.node(NodeId(0)), net.fabric(), &sizes);
        let b = pull_train(SimTime::ZERO, net.node(NodeId(1)), net.fabric(), &sizes);
        let (a_end, b_end) = (a.last().unwrap(), b.last().unwrap());
        assert!(
            b_end.since(*a_end).as_secs_f64() < 0.01,
            "independent trains must overlap (a={a_end:?} b={b_end:?})"
        );
    }

    #[test]
    fn push_train_chunks_wait_for_their_start_instants() {
        let net = net();
        let chunk = 6 << 20; // 0.1 s on the 60 MiB/s NIC
                             // Chunks delivered every 0.3 s but served in 0.1 s: each store
                             // waits for its delivery, none queue on the pipes.
        let starts = vec![SimTime::ZERO, SimTime(300_000_000), SimTime(600_000_000)];
        let ends = push_train(&starts, net.node(NodeId(2)), net.fabric(), &[chunk; 3]);
        for (s, e) in starts.iter().zip(&ends) {
            assert!((e.since(*s).as_secs_f64() - 0.1).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_train_is_a_no_op() {
        let net = net();
        assert!(pull_train(SimTime::ZERO, net.node(NodeId(0)), net.fabric(), &[]).is_empty());
        assert!(push_train(&[], net.node(NodeId(0)), net.fabric(), &[]).is_empty());
        assert_eq!(net.node(NodeId(0)).disk.next_free(), SimTime::ZERO);
        assert_eq!(net.fabric().next_free(), SimTime::ZERO);
    }

    #[test]
    fn disjoint_transfers_overlap_shared_endpoints_serialise() {
        let net = net();
        let block = 128 << 20;
        let a = net.transfer(SimTime::ZERO, NodeId(0), NodeId(1), block);
        let b = net.transfer(SimTime::ZERO, NodeId(2), NodeId(3), block);
        let c = net.transfer(SimTime::ZERO, NodeId(0), NodeId(4), block);
        assert_eq!(a.start, b.start, "independent node pairs start together");
        assert!(c.start >= a.end, "same source NIC/disk must queue");
        // Bottleneck is the 60 MiB/s NIC: 128 MiB take ~2.13 s.
        let expect = 128.0 / 60.0;
        assert!((a.duration().as_secs_f64() - expect).abs() < 1e-6);
    }

    #[test]
    fn local_reads_only_use_the_disk() {
        let net = net();
        let r = net.disk_io(SimTime::ZERO, NodeId(5), 100 << 20);
        assert!((r.duration().as_secs_f64() - 1.0).abs() < 1e-6);
        // The NIC stayed free.
        assert_eq!(net.node(NodeId(5)).nic.next_free(), SimTime::ZERO);
    }

    #[test]
    fn transfer_reports_per_pipe_waits_and_fabric_delay() {
        let fabric = Resource::new(100.0);
        let src = Resource::new(100.0);
        let dst = Resource::new(100.0);
        // Keep the source busy for 2 s and the fabric busy for 1 s.
        src.occupy_until(SimTime(2_000_000_000));
        fabric.reserve_bytes(SimTime::ZERO, 100 << 20);
        let out = Transfer::new(&fabric, 100 << 20)
            .via(&src)
            .via(&dst)
            .issue(SimTime::ZERO);
        // The transfer waited 2 s on the source and none on the destination.
        assert_eq!(out.pipe_waits.len(), 2);
        assert_eq!(out.pipe_waits[0].as_secs_f64(), 2.0);
        assert_eq!(out.pipe_waits[1].as_secs_f64(), 0.0);
        assert_eq!(out.reservation.start, SimTime(2_000_000_000));
        // Pipes and fabric run at the same rate and the fabric freed up
        // before the start, so it adds no completion delay here.
        assert_eq!(out.fabric_delay, SimDuration::ZERO);
        assert_eq!(out.reservation.duration().as_secs_f64(), 1.0);
        // Both pipes are held through the end.
        assert_eq!(src.next_free(), out.reservation.end);
        assert_eq!(dst.next_free(), out.reservation.end);
    }

    #[test]
    fn saturated_fabric_extends_the_transfer() {
        // Fabric slower than the pipes: the transfer is fabric-bound and the
        // extra time is reported as fabric delay.
        let fabric = Resource::new(50.0);
        let pipe = Resource::new(100.0);
        let out = Transfer::new(&fabric, 100 << 20)
            .via(&pipe)
            .issue(SimTime::ZERO);
        assert_eq!(out.reservation.duration().as_secs_f64(), 2.0);
        assert_eq!(out.fabric_delay.as_secs_f64(), 1.0);
        assert_eq!(out.pipe_waits[0], SimDuration::ZERO);
    }

    #[test]
    fn transfer_matches_reserve_pipes_semantics() {
        // The public Transfer and the internal reserve_pipes path must grant
        // identical windows for identical traffic.
        let a = net();
        let b = net();
        let block = 128 << 20;
        for i in 0..8usize {
            let (src, dst) = (NodeId(i % 3), NodeId(3 + i % 4));
            let legacy = a.transfer(SimTime::ZERO, src, dst, block);
            let via = Transfer::new(b.fabric(), block)
                .via(&b.node(src).disk)
                .via(&b.node(src).nic)
                .via(&b.node(dst).nic)
                .via(&b.node(dst).disk)
                .issue(SimTime::ZERO);
            assert_eq!(legacy, via.reservation, "transfer {i}");
        }
    }

    #[test]
    fn reset_clears_reservations() {
        let net = net();
        net.transfer(SimTime::ZERO, NodeId(0), NodeId(1), 1 << 30);
        net.take_node_down(NodeId(2));
        net.set_node_slowdown(NodeId(3), 8.0);
        net.reset();
        assert_eq!(net.node(NodeId(0)).disk.next_free(), SimTime::ZERO);
        assert_eq!(net.fabric().next_free(), SimTime::ZERO);
        assert!(net.is_node_up(NodeId(2)));
        assert_eq!(net.node(NodeId(3)).disk.slowdown(), 1.0);
        assert_eq!(net.len(), 25);
        assert!(!net.is_empty());
    }

    #[test]
    fn availability_flips_and_restore_blocks_the_outage_window() {
        let net = net();
        assert_eq!(net.node_state(NodeId(7)), NodeState::Up);
        net.take_node_down(NodeId(7));
        assert_eq!(net.node_state(NodeId(7)), NodeState::Down);
        assert!(!net.is_node_up(NodeId(7)));
        // Recovery at t=30s: nothing can be granted a window inside the
        // outage, so a transfer issued "at the epoch" afterwards starts at
        // the recovery instant.
        let up_at = SimTime(30_000_000_000);
        net.restore_node(up_at, NodeId(7));
        assert!(net.is_node_up(NodeId(7)));
        let r = net.transfer(SimTime::ZERO, NodeId(7), NodeId(8), 1 << 20);
        assert!(r.start >= up_at);
    }

    #[test]
    fn node_slowdown_stretches_io() {
        let net = net();
        // simulation_25: 100 MiB/s disks. At 4x slowdown, 100 MiB take 4 s.
        net.set_node_slowdown(NodeId(1), 4.0);
        let r = net.disk_io(SimTime::ZERO, NodeId(1), 100 << 20);
        assert!((r.duration().as_secs_f64() - 4.0).abs() < 1e-6);
        net.set_node_slowdown(NodeId(1), 1.0);
        let healthy = net.disk_io(SimTime::ZERO, NodeId(1), 100 << 20);
        assert!((healthy.duration().as_secs_f64() - 1.0).abs() < 1e-6);
    }
}
