//! The modeled cluster I/O fabric: per-node disks and NICs plus the shared
//! LAN, with bandwidths drawn from [`ClusterSpec`].

use drc_cluster::{ClusterSpec, NodeId};

use crate::resource::{Reservation, Resource};
use crate::time::SimTime;

/// The I/O resources of one data node.
#[derive(Debug)]
pub struct NodeIo {
    /// The node's disk (sequential bandwidth; reads and writes share it).
    pub disk: Resource,
    /// The node's network interface (ingress and egress share it, as on the
    /// single shared LAN of the paper's set-ups).
    pub nic: Resource,
}

impl NodeIo {
    /// Builds one node's resources from a cluster spec's per-node bandwidths.
    pub fn new(spec: &ClusterSpec) -> Self {
        NodeIo {
            disk: Resource::new(spec.disk_bandwidth_mbps),
            nic: Resource::new(spec.network_bandwidth_mbps),
        }
    }
}

/// The shared LAN fabric of a cluster: aggregate traffic queues through it
/// at `network_bandwidth_mbps × data_nodes`. [`ClusterNet`] and the HDFS
/// layer both build their fabric here (the MapReduce engine intentionally
/// scales its LAN to *live* nodes instead, matching its wave model).
pub fn fabric(spec: &ClusterSpec) -> Resource {
    Resource::new(spec.network_bandwidth_mbps * spec.data_nodes as f64)
}

/// Reserves a set of pipes plus the shared fabric for one `bytes`-sized
/// operation issued at `now`: the operation starts once every pipe is free,
/// lasts the bottleneck pipe's service time (or longer if the fabric is
/// saturated), and holds every pipe for its whole duration.
///
/// Multi-pipe reservation is read-then-occupy, not atomic: it assumes a
/// single thread issues the virtual-time operations of one simulation (the
/// `&self` atomics exist so shared components can be held behind `&`
/// references, not for concurrent issuance). Two threads reserving
/// overlapping pipe sets concurrently could double-book a window.
fn reserve_pipes(now: SimTime, pipes: &[&Resource], fabric: &Resource, bytes: u64) -> Reservation {
    let mut start = now;
    for pipe in pipes {
        start = start.max(pipe.next_free());
    }
    let fabric_res = fabric.reserve_bytes(start, bytes);
    let slowest = pipes
        .iter()
        .map(|pipe| pipe.service_time(bytes))
        .max()
        .unwrap_or_default();
    let end = (start + slowest).max(fabric_res.end);
    for pipe in pipes {
        pipe.occupy_until(end);
    }
    Reservation { start, end }
}

/// A node-to-node transfer: source disk + NIC, destination NIC + disk, and
/// the shared fabric (the stages stream concurrently).
pub fn transfer_between(
    now: SimTime,
    src: &NodeIo,
    dst: &NodeIo,
    fabric: &Resource,
    bytes: u64,
) -> Reservation {
    reserve_pipes(
        now,
        &[&src.disk, &src.nic, &dst.nic, &dst.disk],
        fabric,
        bytes,
    )
}

/// An inbound transfer from outside the modeled cluster (a client write, a
/// decoded block landing on a replacement): destination NIC + disk + fabric.
pub fn push_to(now: SimTime, dst: &NodeIo, fabric: &Resource, bytes: u64) -> Reservation {
    reserve_pipes(now, &[&dst.nic, &dst.disk], fabric, bytes)
}

/// An outbound transfer to a consumer outside the modeled cluster (a client
/// read, a helper block streaming to a reconstruction): source disk + NIC +
/// fabric.
pub fn pull_from(now: SimTime, src: &NodeIo, fabric: &Resource, bytes: u64) -> Reservation {
    reserve_pipes(now, &[&src.disk, &src.nic], fabric, bytes)
}

/// Disk, NIC and shared-fabric resources for a whole cluster.
///
/// Built from the bandwidth figures of a [`ClusterSpec`]: each node gets a
/// disk and a NIC at the spec's per-node rates, and the LAN fabric moves
/// aggregate traffic at `network_bandwidth_mbps × data_nodes`. A transfer
/// holds its endpoints' resources for the bottleneck service time and queues
/// its bytes through the fabric, so transfers between disjoint node pairs
/// overlap while anything sharing a disk, a NIC or an oversubscribed fabric
/// serialises — exactly the contention the paper's degraded-read and repair
/// experiments measure.
#[derive(Debug)]
pub struct ClusterNet {
    nodes: Vec<NodeIo>,
    fabric: Resource,
}

impl ClusterNet {
    /// Builds the resource model for a cluster spec.
    pub fn new(spec: &ClusterSpec) -> Self {
        let nodes = (0..spec.data_nodes).map(|_| NodeIo::new(spec)).collect();
        ClusterNet {
            nodes,
            fabric: fabric(spec),
        }
    }

    /// Number of modeled nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the model has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The I/O resources of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node is not part of the modeled cluster.
    pub fn node(&self, node: NodeId) -> &NodeIo {
        &self.nodes[node.0]
    }

    /// The shared LAN fabric.
    pub fn fabric(&self) -> &Resource {
        &self.fabric
    }

    /// A local disk read (or write) of `bytes` on `node`, issued at `now`.
    pub fn disk_io(&self, now: SimTime, node: NodeId, bytes: u64) -> Reservation {
        self.node(node).disk.reserve_bytes(now, bytes)
    }

    /// A network transfer of `bytes` from `from`'s disk to `to`'s disk,
    /// issued at `now`.
    ///
    /// The transfer starts once every involved resource is free, lasts the
    /// bottleneck pipe's service time (or longer if the shared fabric is
    /// saturated by other traffic), and holds source disk + NIC, destination
    /// NIC + disk for its whole duration (the stages stream concurrently).
    pub fn transfer(&self, now: SimTime, from: NodeId, to: NodeId, bytes: u64) -> Reservation {
        transfer_between(now, self.node(from), self.node(to), &self.fabric, bytes)
    }

    /// Forgets every reservation (all resources idle at the epoch).
    pub fn reset(&self) {
        for n in &self.nodes {
            n.disk.reset();
            n.nic.reset();
        }
        self.fabric.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> ClusterNet {
        ClusterNet::new(&ClusterSpec::simulation_25(4))
    }

    #[test]
    fn disjoint_transfers_overlap_shared_endpoints_serialise() {
        let net = net();
        let block = 128 << 20;
        let a = net.transfer(SimTime::ZERO, NodeId(0), NodeId(1), block);
        let b = net.transfer(SimTime::ZERO, NodeId(2), NodeId(3), block);
        let c = net.transfer(SimTime::ZERO, NodeId(0), NodeId(4), block);
        assert_eq!(a.start, b.start, "independent node pairs start together");
        assert!(c.start >= a.end, "same source NIC/disk must queue");
        // Bottleneck is the 60 MiB/s NIC: 128 MiB take ~2.13 s.
        let expect = 128.0 / 60.0;
        assert!((a.duration().as_secs_f64() - expect).abs() < 1e-6);
    }

    #[test]
    fn local_reads_only_use_the_disk() {
        let net = net();
        let r = net.disk_io(SimTime::ZERO, NodeId(5), 100 << 20);
        assert!((r.duration().as_secs_f64() - 1.0).abs() < 1e-6);
        // The NIC stayed free.
        assert_eq!(net.node(NodeId(5)).nic.next_free(), SimTime::ZERO);
    }

    #[test]
    fn reset_clears_reservations() {
        let net = net();
        net.transfer(SimTime::ZERO, NodeId(0), NodeId(1), 1 << 30);
        net.reset();
        assert_eq!(net.node(NodeId(0)).disk.next_free(), SimTime::ZERO);
        assert_eq!(net.fabric().next_free(), SimTime::ZERO);
        assert_eq!(net.len(), 25);
        assert!(!net.is_empty());
    }
}
