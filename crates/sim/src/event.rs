//! The time-ordered event queue at the core of the substrate.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled event: ordering is by time, then by schedule order (FIFO for
/// ties), so queue drains are fully deterministic.
#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// One timed event in the making: [`Schedule::at`] pairs a virtual instant
/// with a payload, so layers can describe *when* something should happen
/// separately from the queue that will eventually execute it (the simulated
/// HDFS's failure engine turns each trace event into a `Schedule` and feeds
/// batches in through [`EventQueue::extend`]).
///
/// # Example
///
/// ```
/// use drc_sim::{EventQueue, Schedule, SimTime};
///
/// let plan = vec![
///     Schedule::at(SimTime(30), "node3 restored"),
///     Schedule::at(SimTime(10), "node3 fails"),
/// ];
/// let mut q = EventQueue::new();
/// q.extend(plan);
/// assert_eq!(q.pop(), Some((SimTime(10), "node3 fails")));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schedule<E> {
    /// The absolute virtual instant the event fires.
    pub at: SimTime,
    /// The event payload.
    pub event: E,
}

impl<E> Schedule<E> {
    /// Pairs an instant with an event.
    pub fn at(at: SimTime, event: E) -> Self {
        Schedule { at, event }
    }
}

/// A discrete-event queue over a virtual clock.
///
/// Events are scheduled at absolute instants (or relative to *now*) and
/// popped in time order; popping advances the queue's clock to the event's
/// instant. Ties pop in schedule order.
///
/// # Example
///
/// ```
/// use drc_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule_at(SimTime(20), "late");
/// q.schedule_at(SimTime(10), "early");
/// assert_eq!(q.pop(), Some((SimTime(10), "early")));
/// assert_eq!(q.pop(), Some((SimTime(20), "late")));
/// assert_eq!(q.now(), SimTime(20));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at the simulation epoch.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// The queue's current virtual instant (the time of the last popped
    /// event, or the epoch).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// Scheduling in the past is clamped to *now* (the event fires
    /// immediately on the next pop).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event }));
    }

    /// The instant of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// Schedules one prepared [`Schedule`] entry.
    pub fn schedule(&mut self, s: Schedule<E>) {
        self.schedule_at(s.at, s.event);
    }

    /// Schedules a batch of prepared [`Schedule`] entries in order.
    pub fn extend(&mut self, entries: impl IntoIterator<Item = Schedule<E>>) {
        for s in entries {
            self.schedule(s);
        }
    }

    /// Pops the next event, advancing the clock to its instant.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(s) = self.heap.pop()?;
        self.now = self.now.max(s.at);
        Some((s.at, s.event))
    }

    /// Pops the next event only if it is due at or before `horizon`
    /// (advancing the clock to its instant); later events stay queued.
    ///
    /// This is the drain primitive for layers that interleave event
    /// processing with other work: "apply everything that happened up to
    /// this virtual instant, leave the future alone".
    pub fn pop_due(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? > horizon {
            return None;
        }
        self.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_fifo_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(5), "b");
        q.schedule_at(SimTime(5), "c");
        q.schedule_at(SimTime(1), "a");
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(SimTime(1)));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ["a", "b", "c"]);
        assert!(q.is_empty());
    }

    #[test]
    fn schedule_entries_and_pop_due() {
        let mut q = EventQueue::new();
        q.extend([
            Schedule::at(SimTime(9), "late"),
            Schedule::at(SimTime(2), "early"),
        ]);
        q.schedule(Schedule::at(SimTime(5), "mid"));
        assert_eq!(q.pop_due(SimTime(1)), None, "nothing due yet");
        assert_eq!(q.pop_due(SimTime(5)), Some((SimTime(2), "early")));
        assert_eq!(q.pop_due(SimTime(5)), Some((SimTime(5), "mid")));
        assert_eq!(q.pop_due(SimTime(5)), None, "'late' is beyond the horizon");
        assert_eq!(q.pop(), Some((SimTime(9), "late")));
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(10), ());
        q.pop();
        q.schedule_at(SimTime(3), ());
        assert_eq!(q.pop(), Some((SimTime(10), ())));
    }
}
