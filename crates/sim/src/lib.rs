//! Discrete-event simulation substrate for the cluster experiments.
//!
//! The paper's headline results hinge on *overlap*: degraded reads,
//! reconstruction traffic and task execution compete for the same disks and
//! links. This crate supplies the event-driven core that lets the simulated
//! HDFS and MapReduce layers model that contention in **virtual time**:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-nanosecond virtual time, so
//!   ordering and accumulation are exactly deterministic,
//! * [`VirtualClock`] — the per-simulation clock operations advance,
//! * [`EventQueue`] — a time-ordered queue with deterministic FIFO
//!   tie-breaking, the execution core every timed subsystem drains;
//!   [`Schedule::at`] pairs instants with payloads so plans (failure
//!   traces) can be described before any queue executes them,
//! * [`Resource`] — a bandwidth server (disk, NIC, shared LAN fabric) whose
//!   reservations serialise contending transfers; lock-free so shared
//!   components (DataNodes) can reserve through `&self`,
//! * [`ClusterNet`] — per-node disk + NIC resources and the shared fabric,
//!   built from [`drc_cluster::ClusterSpec`] bandwidth figures, with a
//!   per-node [`NodeState`] availability signal so timed failure/recovery
//!   events can take a node's resources dark and restore them mid-run,
//! * [`Transfer`] — sequences one operation's acquisition of several pipes
//!   plus the fabric and reports per-link wait time, so layers that share
//!   the fabric (shuffle, repair, degraded reads) can attribute their
//!   queueing delay to the link that caused it,
//! * [`Phase`] / [`Timeline`] — serialisable per-phase timelines (start,
//!   end, bytes) that experiments emit so overlap is visible in reports.
//!
//! # Threading
//!
//! Virtual time is orthogonal to real parallelism: the encode/repair hot
//! paths run on the workspace-wide worker pool (the vendored `rayon` stub).
//! The pool's worker count comes from the `DRC_SIM_THREADS` environment
//! variable (default: all cores; `DRC_SIM_THREADS=1` is the deterministic
//! single-thread fallback), the sibling knob of `DRC_GF_KERNEL` which pins
//! the SIMD kernel. Parallel and single-threaded runs produce byte-identical
//! results; only wall-clock throughput differs.
//!
//! # Example
//!
//! ```
//! use drc_sim::{ClusterNet, EventQueue, SimTime};
//! use drc_cluster::{ClusterSpec, NodeId};
//!
//! let net = ClusterNet::new(&ClusterSpec::setup1());
//! // Two transfers from different sources overlap; two from the same
//! // source serialise on its NIC.
//! let a = net.transfer(SimTime::ZERO, NodeId(0), NodeId(1), 64 << 20);
//! let b = net.transfer(SimTime::ZERO, NodeId(2), NodeId(3), 64 << 20);
//! let c = net.transfer(SimTime::ZERO, NodeId(0), NodeId(4), 64 << 20);
//! assert_eq!(a.start, b.start);
//! assert!(c.start >= a.end);
//!
//! let mut queue: EventQueue<&'static str> = EventQueue::new();
//! queue.schedule_at(a.end, "transfer a done");
//! queue.schedule_at(b.end, "transfer b done");
//! while let Some((when, event)) = queue.pop() {
//!     assert_eq!(when, queue.now());
//!     let _ = event;
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod net;
mod resource;
mod time;
mod timeline;

pub use event::{EventQueue, Schedule};
pub use net::{
    chunk_sizes, fabric, pull_from, pull_train, push_to, push_train, transfer_between, ClusterNet,
    NodeIo, NodeState, Transfer, TransferOutcome,
};
pub use resource::{Reservation, Resource};
pub use time::{SimDuration, SimTime, VirtualClock};
pub use timeline::{detection_lag_label, Phase, Timeline, DETECTION_LAG_PREFIX};
