//! Bandwidth servers: the contention model for disks, NICs and links.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// The virtual-time window a resource granted to one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Reservation {
    /// When the operation starts occupying the resource.
    pub start: SimTime,
    /// When the resource becomes free again.
    pub end: SimTime,
}

impl Reservation {
    /// The reserved span.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// A unit-capacity bandwidth server in virtual time.
///
/// A resource (a disk, a NIC, the shared LAN fabric, a map slot) serves one
/// operation at a time; an operation issued at `now` starts at
/// `max(now, next_free)` and occupies the resource for its duration. That
/// single rule is what makes contention visible: transfers on *different*
/// resources overlap, transfers on the *same* resource queue behind each
/// other.
///
/// The free-time cursor is an `AtomicU64`, so components shared behind
/// `&self` (DataNodes, the fabric) can reserve without locks.
///
/// A resource can be **slowed down** ([`Resource::set_slowdown`]): a factor
/// of 2.0 halves the effective bandwidth from that point on, 1.0 restores
/// nominal speed. Failure traces use this for degraded-but-alive nodes
/// (a failing disk, a congested uplink).
///
/// # Example
///
/// ```
/// use drc_sim::{Resource, SimTime};
///
/// let disk = Resource::new(100.0); // 100 MiB/s
/// let a = disk.reserve_bytes(SimTime::ZERO, 100 << 20);
/// let b = disk.reserve_bytes(SimTime::ZERO, 100 << 20);
/// assert_eq!(a.end.as_secs_f64(), 1.0);
/// assert_eq!(b.start, a.end); // queued behind the first read
/// ```
#[derive(Debug)]
pub struct Resource {
    bandwidth_mib_s: f64,
    next_free: AtomicU64,
    /// Bandwidth divisor (f64 bits): 1.0 = nominal, 2.0 = half speed.
    slowdown: AtomicU64,
}

impl Default for Resource {
    fn default() -> Self {
        Resource::new(0.0)
    }
}

impl Resource {
    /// Creates a free resource with the given bandwidth in MiB/s.
    ///
    /// A non-positive bandwidth models an infinitely fast resource.
    pub fn new(bandwidth_mib_s: f64) -> Self {
        Resource {
            bandwidth_mib_s,
            next_free: AtomicU64::new(0),
            slowdown: AtomicU64::new(1.0f64.to_bits()),
        }
    }

    /// The modeled nominal bandwidth in MiB/s (before any slowdown).
    pub fn bandwidth_mib_s(&self) -> f64 {
        self.bandwidth_mib_s
    }

    /// The current slowdown factor (1.0 when running at nominal speed).
    pub fn slowdown(&self) -> f64 {
        f64::from_bits(self.slowdown.load(Ordering::Acquire))
    }

    /// Divides the effective bandwidth by `factor` for every reservation
    /// made from now on (already-granted windows are unchanged). A factor
    /// of 1.0 restores nominal speed; non-finite or non-positive factors
    /// are treated as 1.0 so a degenerate trace cannot stall a resource
    /// forever.
    pub fn set_slowdown(&self, factor: f64) {
        let factor = if factor.is_finite() && factor > 0.0 {
            factor
        } else {
            1.0
        };
        self.slowdown.store(factor.to_bits(), Ordering::Release);
    }

    /// The service time for `bytes` at this resource's effective (slowdown-
    /// adjusted) bandwidth.
    pub fn service_time(&self, bytes: u64) -> SimDuration {
        SimDuration::for_bytes(bytes, self.bandwidth_mib_s / self.slowdown())
    }

    /// When the resource is next idle.
    pub fn next_free(&self) -> SimTime {
        SimTime(self.next_free.load(Ordering::Acquire))
    }

    /// Reserves the resource for `duration`, starting no earlier than `now`.
    pub fn reserve_for(&self, now: SimTime, duration: SimDuration) -> Reservation {
        loop {
            let free = self.next_free.load(Ordering::Acquire);
            let start = now.max(SimTime(free));
            let end = start + duration;
            if self
                .next_free
                .compare_exchange(free, end.0, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Reservation { start, end };
            }
        }
    }

    /// Reserves the time to move `bytes` through the resource, starting no
    /// earlier than `now`.
    pub fn reserve_bytes(&self, now: SimTime, bytes: u64) -> Reservation {
        self.reserve_for(now, self.service_time(bytes))
    }

    /// Marks the resource busy through `end` without changing when earlier
    /// reservations finish (used when one operation must hold several
    /// resources over the same window).
    pub fn occupy_until(&self, end: SimTime) {
        self.next_free.fetch_max(end.0, Ordering::AcqRel);
    }

    /// Forgets all reservations and any slowdown (a fresh resource at the
    /// epoch, at nominal speed).
    pub fn reset(&self) {
        self.next_free.store(0, Ordering::Release);
        self.slowdown.store(1.0f64.to_bits(), Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservations_serialise() {
        let r = Resource::new(50.0);
        let a = r.reserve_bytes(SimTime::ZERO, 50 << 20);
        let b = r.reserve_bytes(SimTime::ZERO, 25 << 20);
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(a.duration().as_secs_f64(), 1.0);
        assert_eq!(b.start, a.end);
        assert_eq!(b.duration().as_secs_f64(), 0.5);
        assert_eq!(r.next_free(), b.end);
    }

    #[test]
    fn idle_gaps_are_respected() {
        let r = Resource::new(100.0);
        let late = r.reserve_bytes(SimTime(5_000_000_000), 100 << 20);
        assert_eq!(late.start, SimTime(5_000_000_000));
    }

    #[test]
    fn occupy_and_reset() {
        let r = Resource::new(1.0);
        r.occupy_until(SimTime(42));
        assert_eq!(r.next_free(), SimTime(42));
        r.occupy_until(SimTime(7));
        assert_eq!(r.next_free(), SimTime(42));
        r.reset();
        assert_eq!(r.next_free(), SimTime::ZERO);
    }

    #[test]
    fn slowdown_scales_service_time_and_reset_clears_it() {
        let r = Resource::new(100.0);
        assert_eq!(r.slowdown(), 1.0);
        r.set_slowdown(2.0);
        assert_eq!(r.slowdown(), 2.0);
        // 100 MiB at an effective 50 MiB/s take two seconds.
        let res = r.reserve_bytes(SimTime::ZERO, 100 << 20);
        assert_eq!(res.duration().as_secs_f64(), 2.0);
        // Restoring nominal speed only affects future reservations.
        r.set_slowdown(1.0);
        let healthy = r.reserve_bytes(SimTime::ZERO, 100 << 20);
        assert_eq!(healthy.duration().as_secs_f64(), 1.0);
        assert_eq!(healthy.start, res.end);
        // Degenerate factors never stall the resource.
        r.set_slowdown(f64::NAN);
        assert_eq!(r.slowdown(), 1.0);
        r.set_slowdown(-3.0);
        assert_eq!(r.slowdown(), 1.0);
        r.set_slowdown(4.0);
        r.reset();
        assert_eq!(r.slowdown(), 1.0);
    }

    #[test]
    fn infinite_bandwidth_is_instant() {
        let r = Resource::new(0.0);
        let res = r.reserve_bytes(SimTime(9), u64::MAX);
        assert_eq!(res.start, res.end);
    }
}
