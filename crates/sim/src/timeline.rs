//! Per-phase virtual-time timelines: the serialisable record experiments
//! emit so contention and overlap are visible in reports.

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// The label prefix both failure engines (the simulated HDFS's
/// detection/auto-repair queue and the MapReduce engine's traced execution)
/// use for blind-window phases, so experiments matching
/// [`Timeline::with_prefix`] see the same spans whichever layer recorded
/// them.
pub const DETECTION_LAG_PREFIX: &str = "detection-lag:";

/// The canonical label of one node's detection blind window — the phase
/// covering `[failure, detection boundary)` with zero bytes.
pub fn detection_lag_label(node_index: usize) -> String {
    format!("{DETECTION_LAG_PREFIX}node{node_index}")
}

/// One labelled span of virtual time (a write pass, a repair, a degraded
/// read, a map wave, …) plus the bytes it moved.
///
/// A phase covers the **half-open interval `[start, end)`**: the phase is in
/// flight at `start` and no longer in flight at `end`. Two back-to-back
/// phases that share a timestamp (`a.end == b.start`) therefore never
/// overlap, and a zero-length phase (`start == end`, e.g. an instantaneous
/// completion on an infinitely fast resource) covers no time at all — it is
/// kept on the timeline for its label and byte accounting but contributes
/// nothing to [`Timeline::overlap`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Phase {
    /// What the span was doing, e.g. `"repair"` or `"degraded-read"`.
    pub label: String,
    /// When the phase was issued.
    pub start: SimTime,
    /// When the phase's last event completed.
    pub end: SimTime,
    /// Bytes moved over the network during the phase.
    pub bytes: u64,
}

impl Phase {
    /// The phase's span.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// An append-only list of [`Phase`]s over one simulation.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Timeline {
    /// The recorded phases, in issue order.
    pub phases: Vec<Phase>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Records one phase.
    pub fn record(&mut self, label: impl Into<String>, start: SimTime, end: SimTime, bytes: u64) {
        self.phases.push(Phase {
            label: label.into(),
            start,
            end,
            bytes,
        });
    }

    /// The instant the last phase finishes (the epoch when empty).
    pub fn end(&self) -> SimTime {
        self.phases
            .iter()
            .map(|p| p.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Total virtual time covered, from the earliest start to the latest end.
    pub fn makespan(&self) -> SimDuration {
        let start = self.phases.iter().map(|p| p.start).min();
        match start {
            Some(s) => self.end().since(s),
            None => SimDuration::ZERO,
        }
    }

    /// Phases whose label starts with `prefix`.
    pub fn with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a Phase> {
        self.phases
            .iter()
            .filter(move |p| p.label.starts_with(prefix))
    }

    /// Virtual time during which phases labelled with `a` and phases
    /// labelled with `b` were *both* in flight — the overlap the serial
    /// execution model could never show.
    ///
    /// Phases are half-open `[start, end)` intervals: a phase ending at the
    /// exact instant another starts shares only the boundary timestamp, which
    /// covers zero time, so back-to-back events never report phantom overlap.
    /// Zero-length phases are in flight for no time at all and overlap
    /// nothing, including other zero-length phases at the same instant.
    pub fn overlap(&self, a: &str, b: &str) -> SimDuration {
        let ia = union_intervals(self.with_prefix(a));
        let ib = union_intervals(self.with_prefix(b));
        let mut total = 0u64;
        for (s1, e1) in &ia {
            for (s2, e2) in &ib {
                let s = s1.max(s2);
                let e = e1.min(e2);
                if e > s {
                    total += e.0 - s.0;
                }
            }
        }
        SimDuration(total)
    }

    /// Total bytes recorded across phases with the given label prefix.
    pub fn bytes_with_prefix(&self, prefix: &str) -> u64 {
        self.with_prefix(prefix).map(|p| p.bytes).sum()
    }
}

/// Merges phase spans into disjoint, sorted intervals.
fn union_intervals<'a>(phases: impl Iterator<Item = &'a Phase>) -> Vec<(SimTime, SimTime)> {
    let mut spans: Vec<(SimTime, SimTime)> = phases
        .filter(|p| p.end > p.start)
        .map(|p| (p.start, p.end))
        .collect();
    spans.sort();
    let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(spans.len());
    for (s, e) in spans {
        match merged.last_mut() {
            Some((_, last_end)) if s <= *last_end => *last_end = (*last_end).max(e),
            _ => merged.push((s, e)),
        }
    }
    merged
}

impl std::fmt::Display for Timeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for p in &self.phases {
            writeln!(
                f,
                "{:<28} {:>9.3}s .. {:>9.3}s  ({:>8.3}s, {:>7.1} MiB)",
                p.label,
                p.start.as_secs_f64(),
                p.end.as_secs_f64(),
                p.duration().as_secs_f64(),
                p.bytes as f64 / (1024.0 * 1024.0),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(s)
    }

    #[test]
    fn makespan_and_end() {
        let mut tl = Timeline::new();
        assert_eq!(tl.makespan(), SimDuration::ZERO);
        tl.record("write", t(1.0), t(3.0), 100);
        tl.record("repair", t(2.0), t(6.0), 200);
        assert_eq!(tl.end(), t(6.0));
        assert_eq!(tl.makespan(), SimDuration::from_secs_f64(5.0));
        assert_eq!(tl.bytes_with_prefix("repair"), 200);
    }

    #[test]
    fn overlap_of_interleaved_phases() {
        let mut tl = Timeline::new();
        tl.record("repair:0", t(0.0), t(4.0), 0);
        tl.record("repair:1", t(3.0), t(5.0), 0);
        tl.record("degraded-read:a", t(2.0), t(6.0), 0);
        // repair union [0,5] ∩ degraded [2,6] = [2,5] = 3 s.
        assert_eq!(
            tl.overlap("repair", "degraded-read"),
            SimDuration::from_secs_f64(3.0)
        );
        assert_eq!(tl.overlap("repair", "nothing"), SimDuration::ZERO);
    }

    #[test]
    fn back_to_back_phases_do_not_overlap() {
        // Half-open [start, end) convention: sharing a boundary timestamp is
        // not overlap.
        let mut tl = Timeline::new();
        tl.record("shuffle:fetch", t(0.0), t(2.0), 10);
        tl.record("repair:s0", t(2.0), t(4.0), 10);
        assert_eq!(tl.overlap("shuffle:", "repair:"), SimDuration::ZERO);
        // A single nanosecond of true overlap is detected.
        tl.record("repair:s1", SimTime(1_999_999_999), t(2.0), 0);
        assert_eq!(tl.overlap("shuffle:", "repair:"), SimDuration(1));
    }

    #[test]
    fn zero_length_phases_cover_no_time() {
        let mut tl = Timeline::new();
        // Instantaneous completions (e.g. on an infinitely fast resource).
        tl.record("repair:instant", t(1.0), t(1.0), 5);
        tl.record("degraded-read:instant", t(1.0), t(1.0), 7);
        tl.record("degraded-read:span", t(0.0), t(3.0), 0);
        // Identical-timestamp zero-length phases never overlap each other …
        assert_eq!(tl.overlap("repair:", "degraded-read:"), SimDuration::ZERO);
        // … or anything else, even a span that covers their instant.
        assert_eq!(
            tl.overlap("repair:", "degraded-read:span"),
            SimDuration::ZERO
        );
        // But their labels and bytes stay on the record.
        assert_eq!(tl.bytes_with_prefix("repair:"), 5);
        assert_eq!(tl.bytes_with_prefix("degraded-read:"), 7);
        assert_eq!(tl.end(), t(3.0));
    }

    #[test]
    fn display_lists_phases() {
        let mut tl = Timeline::new();
        tl.record("write", t(0.0), t(1.0), 1 << 20);
        let text = tl.to_string();
        assert!(text.contains("write"));
        assert!(text.contains("1.000s"));
    }
}
