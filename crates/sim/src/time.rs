//! Virtual time: integer nanoseconds for exact, deterministic ordering.

use serde::{Deserialize, Serialize};

/// One mebibyte, the unit the cluster specs quote bandwidth in (MiB/s).
const MIB: f64 = 1024.0 * 1024.0;

/// An instant in virtual time, in nanoseconds since simulation start.
///
/// Integer-backed so comparisons, maxima and accumulation are exact: two
/// simulations that issue the same operations in the same order produce the
/// same timelines bit-for-bit, regardless of host or thread count.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Seconds since the simulation epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The later of two instants.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The time elapsed since `earlier` (zero if `earlier` is later).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl std::ops::Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

/// A span of virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Converts from (non-negative, finite) seconds, rounding to the nearest
    /// nanosecond.
    pub fn from_secs_f64(secs: f64) -> SimDuration {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e9).round() as u64)
    }

    /// The duration in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time to move `bytes` through a pipe of `bandwidth_mib_s` MiB/s.
    ///
    /// A non-positive bandwidth models an infinitely fast resource (zero
    /// duration), which keeps degenerate specs harmless.
    pub fn for_bytes(bytes: u64, bandwidth_mib_s: f64) -> SimDuration {
        if bandwidth_mib_s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(bytes as f64 / (bandwidth_mib_s * MIB))
    }
}

impl std::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

/// The clock a simulation advances as it executes timed operations.
///
/// Operations are *issued* at `now()`; the issuing layer decides when to
/// advance, which is what lets independently-issued repair and degraded-read
/// work overlap: both are issued at the same instant and only the shared
/// [`crate::Resource`]s serialise them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtualClock {
    now: SimTime,
}

impl VirtualClock {
    /// A clock at the simulation epoch.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// The current virtual instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Moves the clock forward to `t`; never moves it backwards.
    pub fn advance_to(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_ordering() {
        let t = SimTime::ZERO + SimDuration::from_secs_f64(1.5);
        assert_eq!(t, SimTime(1_500_000_000));
        assert_eq!(t.as_secs_f64(), 1.5);
        assert_eq!(t.max(SimTime(7)), t);
        assert_eq!(t.since(SimTime(500_000_000)), SimDuration(1_000_000_000));
        assert_eq!(SimTime(3).since(t), SimDuration::ZERO);
        assert_eq!(t.to_string(), "1.500s");
    }

    #[test]
    fn bytes_to_duration() {
        // 100 MiB at 100 MiB/s is one second.
        let d = SimDuration::for_bytes(100 * 1024 * 1024, 100.0);
        assert_eq!(d, SimDuration(1_000_000_000));
        assert_eq!(SimDuration::for_bytes(1 << 30, 0.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn clock_is_monotonic() {
        let mut clock = VirtualClock::new();
        clock.advance_to(SimTime(10));
        clock.advance_to(SimTime(5));
        assert_eq!(clock.now(), SimTime(10));
    }
}
