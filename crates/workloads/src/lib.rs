//! Workload generators and load sweeps.
//!
//! §4 of the paper runs the Terasort benchmark "at various load points (from
//! 25% to 100%)". This crate turns a *(cluster, code, load)* triple into a
//! concrete [`JobSpec`](drc_mapreduce::JobSpec) over placed HDFS blocks, so
//! the same workload definition drives the locality simulations, the
//! execution engine and the benchmarks. Besides Terasort it provides two
//! other canonical MapReduce workloads (WordCount-like and Grep-like) for the
//! broader evaluation the paper lists as future work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod load;
mod workload;

pub use load::{fig3_loads, setup1_loads, setup2_loads, LoadPoint};
pub use workload::{provision_workload, ProvisionedWorkload, WorkloadKind};
