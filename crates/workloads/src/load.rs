//! Load points: the x-axes of Fig. 3, 4 and 5.

use serde::{Deserialize, Serialize};

/// A single load point of an experiment sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadPoint {
    /// Load as a percentage of the cluster's total map slots (§3.2).
    pub percent: f64,
}

impl LoadPoint {
    /// Creates a load point.
    pub fn new(percent: f64) -> Self {
        LoadPoint { percent }
    }
}

impl std::fmt::Display for LoadPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.0}%", self.percent)
    }
}

/// The load sweep of the Fig. 3 locality simulations: 25% to 100%.
pub fn fig3_loads() -> Vec<LoadPoint> {
    [25.0, 50.0, 75.0, 100.0]
        .into_iter()
        .map(LoadPoint::new)
        .collect()
}

/// The load points reported for set-up 1 in Fig. 4 (50%, 75%, 100%).
pub fn setup1_loads() -> Vec<LoadPoint> {
    [50.0, 75.0, 100.0]
        .into_iter()
        .map(LoadPoint::new)
        .collect()
}

/// The load points reported for set-up 2 in Fig. 5 (25% to 100%).
pub fn setup2_loads() -> Vec<LoadPoint> {
    [25.0, 50.0, 75.0, 100.0]
        .into_iter()
        .map(LoadPoint::new)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_match_paper_axes() {
        assert_eq!(fig3_loads().len(), 4);
        assert_eq!(setup1_loads().len(), 3);
        assert_eq!(setup2_loads().len(), 4);
        assert_eq!(setup1_loads()[0].percent, 50.0);
        assert_eq!(setup2_loads()[0].percent, 25.0);
        assert_eq!(fig3_loads().last().unwrap().percent, 100.0);
        assert_eq!(LoadPoint::new(62.5).to_string(), "62%");
    }
}
