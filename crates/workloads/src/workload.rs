//! Workload definitions and provisioning.

use rand::Rng;
use serde::{Deserialize, Serialize};

use drc_cluster::{Cluster, ClusterError, PlacementMap, PlacementPolicy};
use drc_codes::CodeKind;
use drc_mapreduce::JobSpec;

/// The MapReduce workload families used in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum WorkloadKind {
    /// Terasort: map output equals map input (shuffle ratio 1.0); the job the
    /// paper measures in §4.
    Terasort,
    /// WordCount-like: the map output is a modest fraction of the input.
    WordCount,
    /// Grep-like: almost nothing is shuffled; the job is map-dominated.
    Grep,
}

impl WorkloadKind {
    /// Map output bytes produced per input byte.
    pub fn shuffle_ratio(&self) -> f64 {
        match self {
            WorkloadKind::Terasort => 1.0,
            WorkloadKind::WordCount => 0.3,
            WorkloadKind::Grep => 0.01,
        }
    }

    /// Map CPU seconds per MiB of input.
    pub fn map_cpu_s_per_mb(&self) -> f64 {
        match self {
            WorkloadKind::Terasort => 0.02,
            WorkloadKind::WordCount => 0.05,
            WorkloadKind::Grep => 0.01,
        }
    }

    /// Reduce CPU seconds per MiB of shuffled data.
    pub fn reduce_cpu_s_per_mb(&self) -> f64 {
        match self {
            WorkloadKind::Terasort => 0.03,
            WorkloadKind::WordCount => 0.02,
            WorkloadKind::Grep => 0.01,
        }
    }

    /// All workload kinds.
    pub fn all() -> Vec<WorkloadKind> {
        vec![
            WorkloadKind::Terasort,
            WorkloadKind::WordCount,
            WorkloadKind::Grep,
        ]
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadKind::Terasort => write!(f, "terasort"),
            WorkloadKind::WordCount => write!(f, "wordcount"),
            WorkloadKind::Grep => write!(f, "grep"),
        }
    }
}

/// A workload instantiated against a concrete placement: the job plus the
/// placement its blocks live in.
#[derive(Debug, Clone)]
pub struct ProvisionedWorkload {
    /// The coding scheme protecting the input data.
    pub code: CodeKind,
    /// The workload family.
    pub kind: WorkloadKind,
    /// The placement of the input file's stripes.
    pub placement: PlacementMap,
    /// The job over the placed blocks.
    pub job: JobSpec,
    /// The load percentage this job represents on its cluster.
    pub load_percent: f64,
}

impl ProvisionedWorkload {
    /// Total map input in bytes, given the cluster's block size.
    pub fn input_bytes(&self, block_size_bytes: u64) -> u64 {
        self.job.map_tasks().len() as u64 * block_size_bytes
    }
}

/// Places the input data for a workload of the given load on the cluster and
/// builds the corresponding job.
///
/// The input file occupies exactly as many blocks as the load requires
/// (`load% × total map slots`, the paper's definition), striped with `code`
/// and placed uniformly at random. The number of reduce tasks defaults to the
/// cluster's total reduce slots, as a Terasort configuration typically would.
///
/// # Errors
///
/// Returns a placement error when the code's stripe does not fit the cluster
/// (e.g. a (10,9) RAID+m stripe on the 9-node set-up 2).
pub fn provision_workload<R: Rng + ?Sized>(
    kind: WorkloadKind,
    code: CodeKind,
    cluster: &Cluster,
    load_percent: f64,
    rng: &mut R,
) -> Result<ProvisionedWorkload, ClusterError> {
    let spec = cluster.spec();
    let tasks = spec.tasks_for_load(load_percent).max(1);
    let built = code.build().map_err(|e| ClusterError::InvalidPlacement {
        reason: e.to_string(),
    })?;
    let stripes = tasks.div_ceil(built.data_blocks());
    let placement = PlacementMap::place(
        built.as_ref(),
        cluster,
        stripes,
        PlacementPolicy::Random,
        rng,
    )?;
    let blocks: Vec<_> = placement.data_blocks().into_iter().take(tasks).collect();
    // The per-kind parameters are compile-time constants and always finite;
    // the validation errors they would raise are unreachable here.
    let job = JobSpec::new(format!("{kind}-{load_percent:.0}pct"), blocks)
        .with_shuffle_ratio(kind.shuffle_ratio())
        .expect("workload shuffle ratios are finite")
        .with_map_cpu_s_per_mb(kind.map_cpu_s_per_mb())
        .expect("workload map CPU costs are finite")
        .with_reduce_cpu_s_per_mb(kind.reduce_cpu_s_per_mb())
        .expect("workload reduce CPU costs are finite")
        .with_reduce_tasks(spec.total_reduce_slots().max(1));
    Ok(ProvisionedWorkload {
        code,
        kind,
        placement,
        job,
        load_percent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use drc_cluster::ClusterSpec;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn workload_parameters_are_ordered_sensibly() {
        assert!(WorkloadKind::Terasort.shuffle_ratio() > WorkloadKind::WordCount.shuffle_ratio());
        assert!(WorkloadKind::WordCount.shuffle_ratio() > WorkloadKind::Grep.shuffle_ratio());
        assert_eq!(WorkloadKind::all().len(), 3);
        for kind in WorkloadKind::all() {
            assert!(!kind.to_string().is_empty());
            assert!(kind.map_cpu_s_per_mb() > 0.0);
            assert!(kind.reduce_cpu_s_per_mb() > 0.0);
        }
    }

    #[test]
    fn provisioning_matches_load_definition() {
        let cluster = Cluster::new(ClusterSpec::setup1());
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let w = provision_workload(
            WorkloadKind::Terasort,
            CodeKind::Pentagon,
            &cluster,
            75.0,
            &mut rng,
        )
        .unwrap();
        // 75% of 50 slots = 37.5 -> 38 tasks.
        assert_eq!(w.job.map_tasks().len(), 38);
        assert_eq!(w.load_percent, 75.0);
        assert_eq!(w.job.shuffle_ratio(), 1.0);
        assert_eq!(w.job.reduce_tasks(), 25);
        assert_eq!(
            w.input_bytes(cluster.spec().block_size_bytes()),
            38 * 128 * 1024 * 1024
        );
        // Every task's block exists in the placement.
        for task in w.job.map_tasks() {
            assert!(w.placement.locations(task.block).is_ok());
        }
    }

    #[test]
    fn oversized_codes_fail_to_provision_on_small_clusters() {
        // The paper's point about code length: (10,9) RAID+m needs 20 nodes.
        let cluster = Cluster::new(ClusterSpec::setup2());
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert!(provision_workload(
            WorkloadKind::Terasort,
            CodeKind::RAID_M_10_9,
            &cluster,
            50.0,
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn grep_jobs_barely_shuffle() {
        let cluster = Cluster::new(ClusterSpec::setup2());
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let w = provision_workload(
            WorkloadKind::Grep,
            CodeKind::TWO_REP,
            &cluster,
            100.0,
            &mut rng,
        )
        .unwrap();
        assert!(w.job.shuffle_ratio() < 0.05);
        assert_eq!(w.job.map_tasks().len(), 36);
    }
}
