//! Differential tests for the event-driven shuffle: the event model decides
//! *when* traffic moves, never *how much*.
//!
//! The first test locks the byte accounting to the closed-form formula the
//! engine used before the shuffle became event-driven (modulo the documented
//! round-instead-of-truncate fix): for every code kind, `shuffle_bytes` and
//! `network_traffic_bytes` must match the formula exactly. The second test
//! locks the time model: a saturated LAN strictly delays reduce completion
//! while leaving the byte totals untouched.

use drc_cluster::{Cluster, ClusterSpec, PlacementMap, PlacementPolicy};
use drc_codes::CodeKind;
use drc_mapreduce::{run_job, run_job_on, DelayScheduler, JobSite, JobSpec};
use drc_sim::{ClusterNet, SimDuration, SimTime};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The closed-form shuffle accounting (pre-event-driven model): map output
/// scales the input by the shuffle ratio, and everything except the share
/// produced on the reducer's own node crosses the network. Round to the
/// nearest byte (the engine's documented semantics).
fn closed_form_shuffle(tasks: u64, block_bytes: u64, ratio: f64, up_nodes: usize) -> u64 {
    let input = tasks * block_bytes;
    // drc-lint: allow(lossy-float-cast): the oracle mirrors the engine's
    // documented round-to-nearest byte accounting, term for term.
    let map_output = (input as f64 * ratio).round() as u64;
    let fraction = 1.0 - 1.0 / up_nodes.max(1) as f64;
    // drc-lint: allow(lossy-float-cast): same documented rounding as above.
    (map_output as f64 * fraction).round() as u64
}

#[test]
fn event_driven_shuffle_reproduces_closed_form_bytes_for_every_code_kind() {
    let codes = [
        CodeKind::TWO_REP,
        CodeKind::THREE_REP,
        CodeKind::Pentagon,
        CodeKind::Heptagon,
        CodeKind::HeptagonLocal,
        CodeKind::RAID_M_10_9,
        CodeKind::RAID_M_12_11,
        CodeKind::ReedSolomon {
            data: 10,
            parity: 4,
        },
    ];
    for kind in codes {
        for seed in [1u64, 2] {
            let code = kind.build().unwrap();
            let cluster = Cluster::new(ClusterSpec::simulation_25(2));
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let stripes = 50usize.div_ceil(code.data_blocks());
            let placement = PlacementMap::place(
                code.as_ref(),
                &cluster,
                stripes,
                PlacementPolicy::Random,
                &mut rng,
            )
            .unwrap();
            let blocks: Vec<_> = placement.data_blocks().into_iter().take(50).collect();
            let job = JobSpec::new("differential", blocks)
                .with_shuffle_ratio(0.7)
                .unwrap()
                .with_reduce_tasks(8);
            let metrics = run_job(
                &job,
                code.as_ref(),
                &placement,
                &cluster,
                &DelayScheduler::default(),
                &mut rng,
            )
            .unwrap();

            let block_bytes = cluster.spec().block_size_bytes();
            let expected_shuffle =
                closed_form_shuffle(50, block_bytes, 0.7, cluster.up_nodes().len());
            assert_eq!(
                metrics.shuffle_bytes, expected_shuffle,
                "{kind} seed {seed}: event-driven shuffle changed the byte accounting"
            );
            // Remote and degraded bytes are per-task and unchanged; the
            // total is their sum with the closed-form shuffle volume.
            assert_eq!(
                metrics.network_traffic_bytes,
                metrics.remote_input_bytes + metrics.degraded_read_bytes + expected_shuffle,
                "{kind} seed {seed}"
            );
        }
    }
}

#[test]
fn byte_accounting_is_identical_on_idle_and_congested_substrates() {
    // The same job on an idle net and on a net whose links are all busy must
    // report byte-identical traffic — only the virtual times may differ.
    let code = CodeKind::Pentagon.build().unwrap();
    let cluster = Cluster::new(ClusterSpec::simulation_25(4));
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let placement = PlacementMap::place(
        code.as_ref(),
        &cluster,
        6,
        PlacementPolicy::Random,
        &mut rng,
    )
    .unwrap();
    let job = JobSpec::new("idle-vs-busy", placement.data_blocks()).with_reduce_tasks(12);
    let run_on = |net: &ClusterNet| {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        run_job_on(
            &job,
            code.as_ref(),
            &placement,
            &cluster,
            &DelayScheduler::default(),
            &mut rng,
            JobSite {
                net,
                start: SimTime::ZERO,
            },
        )
        .unwrap()
    };
    let idle_net = ClusterNet::new(cluster.spec());
    let idle = run_on(&idle_net);
    let busy_net = ClusterNet::new(cluster.spec());
    let hold = SimTime::ZERO + SimDuration::from_secs_f64(1000.0);
    busy_net.fabric().occupy_until(hold);
    for n in cluster.up_nodes() {
        busy_net.node(n).nic.occupy_until(hold);
        busy_net.node(n).disk.occupy_until(hold);
    }
    let busy = run_on(&busy_net);
    assert_eq!(busy.shuffle_bytes, idle.shuffle_bytes);
    assert_eq!(busy.remote_input_bytes, idle.remote_input_bytes);
    assert_eq!(busy.degraded_read_bytes, idle.degraded_read_bytes);
    assert_eq!(busy.network_traffic_bytes, idle.network_traffic_bytes);
    assert!(busy.job_time_s > idle.job_time_s);
}

#[test]
fn saturated_lan_strictly_delays_reduce_completion() {
    // One guaranteed-local map task (free slots everywhere, delay
    // scheduling), so the map phase never touches the fabric; saturating the
    // LAN then delays exactly the shuffle/reduce side of the job.
    let code = CodeKind::TWO_REP.build().unwrap();
    let cluster = Cluster::new(ClusterSpec::simulation_25(4));
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let placement = PlacementMap::place(
        code.as_ref(),
        &cluster,
        1,
        PlacementPolicy::Random,
        &mut rng,
    )
    .unwrap();
    let blocks: Vec<_> = placement.data_blocks().into_iter().take(1).collect();
    let job = JobSpec::new("lan-sat", blocks).with_reduce_tasks(8);
    let run_on = |net: &ClusterNet| {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        run_job_on(
            &job,
            code.as_ref(),
            &placement,
            &cluster,
            &DelayScheduler::default(),
            &mut rng,
            JobSite {
                net,
                start: SimTime::ZERO,
            },
        )
        .unwrap()
    };
    let idle_net = ClusterNet::new(cluster.spec());
    let idle = run_on(&idle_net);
    assert_eq!(idle.local_map_tasks, 1, "the single task must run local");

    let sat_net = ClusterNet::new(cluster.spec());
    let hold = SimTime::ZERO + SimDuration::from_secs_f64(idle.job_time_s + 30.0);
    sat_net.fabric().occupy_until(hold);
    let sat = run_on(&sat_net);

    // The map phase is untouched (no remote reads, so no fabric use) …
    assert_eq!(sat.map_phase_s, idle.map_phase_s);
    assert_eq!(sat.local_map_tasks, 1);
    // … while reduce completion is strictly delayed past the hold, with the
    // wait attributed to the saturated fabric.
    assert!(
        sat.timeline.end() > idle.timeline.end(),
        "saturated LAN must delay reduce completion"
    );
    assert!(sat.reduce_phase_s > idle.reduce_phase_s);
    assert!(sat.timeline.end() >= hold);
    assert!(sat.shuffle_contention.fabric_wait_s > 0.0);
    // Bytes are untouched by congestion.
    assert_eq!(sat.network_traffic_bytes, idle.network_traffic_bytes);
    assert_eq!(sat.shuffle_bytes, idle.shuffle_bytes);
}
