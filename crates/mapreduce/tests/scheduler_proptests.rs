//! Property-based tests on the task schedulers: every scheduler must produce
//! valid assignments, and the three schedulers must respect their known
//! quality ordering in aggregate.

use std::collections::BTreeMap;

use drc_cluster::{Cluster, ClusterSpec, NodeId, PlacementMap, PlacementPolicy};
use drc_codes::CodeKind;
use drc_mapreduce::{MapTask, SchedulerKind, TaskId, TaskNodeGraph};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn paper_code() -> impl Strategy<Value = CodeKind> {
    prop_oneof![
        Just(CodeKind::TWO_REP),
        Just(CodeKind::THREE_REP),
        Just(CodeKind::Pentagon),
        Just(CodeKind::Heptagon),
        Just(CodeKind::HeptagonLocal),
    ]
}

fn build_instance(
    code: CodeKind,
    nodes: usize,
    slots: usize,
    tasks: usize,
    seed: u64,
) -> (TaskNodeGraph, BTreeMap<NodeId, usize>) {
    let cluster = Cluster::new(ClusterSpec::custom(nodes, 3, slots));
    let built = code.build().unwrap();
    let stripes = tasks.div_ceil(built.data_blocks()).max(1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let placement = PlacementMap::place(
        built.as_ref(),
        &cluster,
        stripes,
        PlacementPolicy::Random,
        &mut rng,
    )
    .unwrap();
    let map_tasks: Vec<MapTask> = placement
        .data_blocks()
        .into_iter()
        .take(tasks)
        .enumerate()
        .map(|(i, block)| MapTask {
            id: TaskId(i),
            block,
        })
        .collect();
    let graph = TaskNodeGraph::build(&map_tasks, &placement, &cluster);
    let caps = graph.nodes().iter().map(|&n| (n, slots)).collect();
    (graph, caps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every scheduler produces a valid assignment: no duplicate tasks, no
    /// over-capacity nodes, correct locality flags, and full coverage when
    /// capacity allows.
    #[test]
    fn schedulers_produce_valid_assignments(
        code in paper_code(),
        slots in 1usize..5,
        tasks in 1usize..120,
        seed in any::<u64>(),
    ) {
        // A cluster large enough for every paper code's stripe (>= 15 nodes).
        let (graph, caps) = build_instance(code, 25, slots, tasks, seed);
        let capacity_total: usize = caps.values().sum();
        for kind in SchedulerKind::all() {
            let scheduler = kind.build();
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xABCD);
            let assignment = scheduler.assign(&graph, &caps, &mut rng);
            prop_assert!(assignment.validate(&graph, slots).is_none(), "{kind} invalid");
            prop_assert_eq!(assignment.len(), tasks.min(capacity_total), "{} wrong size", kind);
            prop_assert!(assignment.locality_percent() >= 0.0);
            prop_assert!(assignment.locality_percent() <= 100.0);
        }
    }

    /// Maximum matching never places fewer tasks locally than the heuristics,
    /// on any instance.
    #[test]
    fn matching_is_an_upper_bound(
        code in paper_code(),
        slots in 1usize..5,
        tasks in 1usize..100,
        seed in any::<u64>(),
    ) {
        let (graph, caps) = build_instance(code, 25, slots, tasks, seed);
        let mut rng_m = ChaCha8Rng::seed_from_u64(seed);
        let mut rng_d = ChaCha8Rng::seed_from_u64(seed);
        let mut rng_p = ChaCha8Rng::seed_from_u64(seed);
        let mm = SchedulerKind::MaxMatching.build().assign(&graph, &caps, &mut rng_m);
        let ds = SchedulerKind::Delay.build().assign(&graph, &caps, &mut rng_d);
        let peel = SchedulerKind::Peeling.build().assign(&graph, &caps, &mut rng_p);
        prop_assert!(mm.local_tasks() >= ds.local_tasks());
        prop_assert!(mm.local_tasks() >= peel.local_tasks());
    }

    /// With ample slots (capacity >= tasks on every replica holder) every
    /// 2-replica code instance can be scheduled fully locally by matching.
    #[test]
    fn matching_achieves_full_locality_with_ample_capacity(
        tasks in 1usize..40,
        seed in any::<u64>(),
    ) {
        let (graph, caps) = build_instance(CodeKind::TWO_REP, 25, 8, tasks, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mm = SchedulerKind::MaxMatching.build().assign(&graph, &caps, &mut rng);
        // 8 slots x 25 nodes = 200 >> tasks, and every task has 2 candidates:
        // by Hall's theorem a perfect local matching exists.
        prop_assert_eq!(mm.local_tasks(), tasks);
    }
}
