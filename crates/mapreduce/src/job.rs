//! MapReduce job descriptions.

use serde::{Deserialize, Serialize};

use drc_cluster::GlobalBlockId;

use crate::MapReduceError;

/// Identifier of a map task within a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TaskId(pub usize);

/// One map task: it processes exactly one HDFS data block, as in Hadoop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MapTask {
    /// The task's identifier (its index within the job).
    pub id: TaskId,
    /// The data block the task reads.
    pub block: GlobalBlockId,
}

/// A MapReduce job: a set of map tasks over data blocks, plus the parameters
/// that determine shuffle volume and compute time in the execution engine.
///
/// # Example
///
/// ```
/// use drc_cluster::GlobalBlockId;
/// use drc_mapreduce::JobSpec;
///
/// let blocks: Vec<GlobalBlockId> = (0..10)
///     .map(|i| GlobalBlockId::new(i, 0))
///     .collect();
/// let job = JobSpec::new("terasort", blocks)
///     .with_shuffle_ratio(1.0)
///     .expect("finite ratio")
///     .with_reduce_tasks(5);
/// assert_eq!(job.map_tasks().len(), 10);
/// assert_eq!(job.reduce_tasks(), 5);
/// // Non-finite parameters are rejected at construction time.
/// assert!(job.with_shuffle_ratio(f64::NAN).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    name: String,
    map_tasks: Vec<MapTask>,
    /// Map output bytes produced per input byte (1.0 for Terasort).
    shuffle_ratio: f64,
    /// Number of reduce tasks.
    reduce_tasks: usize,
    /// CPU seconds a map task spends per MiB of input (after the read).
    map_cpu_s_per_mb: f64,
    /// CPU seconds a reduce task spends per MiB of shuffled input.
    reduce_cpu_s_per_mb: f64,
    /// Fixed per-task startup overhead in seconds (JVM spawn, heartbeats).
    task_overhead_s: f64,
}

impl JobSpec {
    /// Creates a job with one map task per data block and default Terasort-like
    /// parameters (shuffle ratio 1.0, one reduce task, modest CPU cost).
    pub fn new(name: impl Into<String>, blocks: Vec<GlobalBlockId>) -> Self {
        let map_tasks = blocks
            .into_iter()
            .enumerate()
            .map(|(i, block)| MapTask {
                id: TaskId(i),
                block,
            })
            .collect();
        JobSpec {
            name: name.into(),
            map_tasks,
            shuffle_ratio: 1.0,
            reduce_tasks: 1,
            map_cpu_s_per_mb: 0.02,
            reduce_cpu_s_per_mb: 0.03,
            task_overhead_s: 1.0,
        }
    }

    /// Validates a job parameter: non-finite values (NaN, ±∞) are a
    /// construction error — `NaN.max(0.0)` is `NaN`, so a clamp alone would
    /// let NaN through and poison every downstream duration and byte count.
    /// Finite negatives clamp to zero as before.
    fn finite_param(value: f64, what: &str) -> Result<f64, MapReduceError> {
        if !value.is_finite() {
            return Err(MapReduceError::InvalidConfig {
                reason: format!("{what} must be finite, got {value}"),
            });
        }
        Ok(value.max(0.0))
    }

    /// Sets the map-output-to-input ratio (1.0 for sort-like jobs, near 0 for
    /// grep-like jobs). Finite negatives clamp to 0.
    ///
    /// # Errors
    ///
    /// Returns [`MapReduceError::InvalidConfig`] for NaN or infinite ratios.
    pub fn with_shuffle_ratio(mut self, ratio: f64) -> Result<Self, MapReduceError> {
        self.shuffle_ratio = Self::finite_param(ratio, "shuffle ratio")?;
        Ok(self)
    }

    /// Sets the number of reduce tasks.
    pub fn with_reduce_tasks(mut self, reduces: usize) -> Self {
        self.reduce_tasks = reduces;
        self
    }

    /// Sets the map CPU cost in seconds per MiB of input. Finite negatives
    /// clamp to 0.
    ///
    /// # Errors
    ///
    /// Returns [`MapReduceError::InvalidConfig`] for NaN or infinite costs.
    pub fn with_map_cpu_s_per_mb(mut self, cost: f64) -> Result<Self, MapReduceError> {
        self.map_cpu_s_per_mb = Self::finite_param(cost, "map CPU cost")?;
        Ok(self)
    }

    /// Sets the reduce CPU cost in seconds per MiB of shuffled data. Finite
    /// negatives clamp to 0.
    ///
    /// # Errors
    ///
    /// Returns [`MapReduceError::InvalidConfig`] for NaN or infinite costs.
    pub fn with_reduce_cpu_s_per_mb(mut self, cost: f64) -> Result<Self, MapReduceError> {
        self.reduce_cpu_s_per_mb = Self::finite_param(cost, "reduce CPU cost")?;
        Ok(self)
    }

    /// Sets the fixed per-task overhead in seconds. Finite negatives clamp
    /// to 0.
    ///
    /// # Errors
    ///
    /// Returns [`MapReduceError::InvalidConfig`] for NaN or infinite
    /// overheads.
    pub fn with_task_overhead_s(mut self, overhead: f64) -> Result<Self, MapReduceError> {
        self.task_overhead_s = Self::finite_param(overhead, "task overhead")?;
        Ok(self)
    }

    /// The job's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The map tasks, in id order.
    pub fn map_tasks(&self) -> &[MapTask] {
        &self.map_tasks
    }

    /// Map output bytes per input byte.
    pub fn shuffle_ratio(&self) -> f64 {
        self.shuffle_ratio
    }

    /// Number of reduce tasks.
    pub fn reduce_tasks(&self) -> usize {
        self.reduce_tasks
    }

    /// Map CPU seconds per MiB of input.
    pub fn map_cpu_s_per_mb(&self) -> f64 {
        self.map_cpu_s_per_mb
    }

    /// Reduce CPU seconds per MiB of shuffled input.
    pub fn reduce_cpu_s_per_mb(&self) -> f64 {
        self.reduce_cpu_s_per_mb
    }

    /// Fixed per-task overhead in seconds.
    pub fn task_overhead_s(&self) -> f64 {
        self.task_overhead_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(n: usize) -> Vec<GlobalBlockId> {
        (0..n).map(|i| GlobalBlockId::new(i / 3, i % 3)).collect()
    }

    #[test]
    fn construction_assigns_sequential_task_ids() {
        let job = JobSpec::new("test", blocks(7));
        assert_eq!(job.name(), "test");
        assert_eq!(job.map_tasks().len(), 7);
        for (i, task) in job.map_tasks().iter().enumerate() {
            assert_eq!(task.id, TaskId(i));
        }
    }

    #[test]
    fn builder_setters_clamp_and_apply() {
        let job = JobSpec::new("j", blocks(2))
            .with_shuffle_ratio(-1.0)
            .unwrap()
            .with_reduce_tasks(4)
            .with_map_cpu_s_per_mb(0.5)
            .unwrap()
            .with_reduce_cpu_s_per_mb(0.25)
            .unwrap()
            .with_task_overhead_s(2.0)
            .unwrap();
        assert_eq!(job.shuffle_ratio(), 0.0);
        assert_eq!(job.reduce_tasks(), 4);
        assert_eq!(job.map_cpu_s_per_mb(), 0.5);
        assert_eq!(job.reduce_cpu_s_per_mb(), 0.25);
        assert_eq!(job.task_overhead_s(), 2.0);
    }

    #[test]
    fn non_finite_parameters_are_rejected() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let job = JobSpec::new("j", blocks(1));
            assert!(job.clone().with_shuffle_ratio(bad).is_err(), "{bad}");
            assert!(job.clone().with_map_cpu_s_per_mb(bad).is_err(), "{bad}");
            assert!(job.clone().with_reduce_cpu_s_per_mb(bad).is_err(), "{bad}");
            assert!(job.clone().with_task_overhead_s(bad).is_err(), "{bad}");
        }
        // The error is a constructor-level InvalidConfig, not a panic or a
        // silently-poisoned job.
        let err = JobSpec::new("j", blocks(1))
            .with_shuffle_ratio(f64::NAN)
            .unwrap_err();
        assert!(matches!(err, MapReduceError::InvalidConfig { .. }));
        assert!(err.to_string().contains("shuffle ratio"));
    }

    #[test]
    fn defaults_are_terasort_like() {
        let job = JobSpec::new("sort", blocks(1));
        assert_eq!(job.shuffle_ratio(), 1.0);
        assert_eq!(job.reduce_tasks(), 1);
        assert!(job.task_overhead_s() > 0.0);
    }
}
