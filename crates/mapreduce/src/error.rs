use std::fmt;

use drc_cluster::{ClusterError, GlobalBlockId};
use drc_codes::CodeError;

/// Errors produced by the scheduling and execution simulators.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MapReduceError {
    /// An experiment or job configuration was invalid.
    InvalidConfig {
        /// Explanation of the problem.
        reason: String,
    },
    /// A placement operation failed.
    Cluster(ClusterError),
    /// Building a code failed.
    Code(CodeError),
    /// A map task's block could not be served even with a degraded read.
    UnreadableBlock {
        /// The block that could not be read.
        block: GlobalBlockId,
        /// The underlying code error.
        source: CodeError,
    },
}

impl fmt::Display for MapReduceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapReduceError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
            MapReduceError::Cluster(e) => write!(f, "cluster error: {e}"),
            MapReduceError::Code(e) => write!(f, "code error: {e}"),
            MapReduceError::UnreadableBlock { block, source } => write!(
                f,
                "block (stripe {}, block {}) cannot be read: {source}",
                block.stripe(),
                block.block()
            ),
        }
    }
}

impl std::error::Error for MapReduceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MapReduceError::Cluster(e) => Some(e),
            MapReduceError::Code(e) => Some(e),
            MapReduceError::UnreadableBlock { source, .. } => Some(source),
            MapReduceError::InvalidConfig { .. } => None,
        }
    }
}

impl From<ClusterError> for MapReduceError {
    fn from(e: ClusterError) -> Self {
        MapReduceError::Cluster(e)
    }
}

impl From<CodeError> for MapReduceError {
    fn from(e: CodeError) -> Self {
        MapReduceError::Code(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        use std::error::Error;
        let e = MapReduceError::InvalidConfig {
            reason: "zero trials".into(),
        };
        assert!(!e.to_string().is_empty());
        assert!(e.source().is_none());
        let e: MapReduceError = ClusterError::UnknownNode { node: 1 }.into();
        assert!(e.source().is_some());
        let e: MapReduceError = CodeError::UnequalBlockLengths.into();
        assert!(e.source().is_some());
        let e = MapReduceError::UnreadableBlock {
            block: GlobalBlockId::new(0, 1),
            source: CodeError::UnequalBlockLengths,
        };
        assert!(e.to_string().contains("stripe 0"));
    }
}
