//! Hadoop's delay scheduling (Zaharia et al., EuroSys 2010).
//!
//! Nodes ask for work in heartbeat order. If the node sending a heartbeat
//! holds no replica of any pending task's block, the scheduler *skips* the
//! assignment; after a bounded number of consecutive skips it gives up on
//! locality and hands the node an arbitrary (remote) pending task. The paper
//! configures the delay "such that every node has a chance to assign two
//! (four) local map tasks" — i.e. on the order of a full sweep of the
//! cluster's heartbeats — which is the default here.

use std::collections::BTreeMap;

use rand::seq::SliceRandom;
use rand::RngCore;

use drc_cluster::NodeId;

use crate::assignment::{Assignment, TaskAssignment};
use crate::graph::TaskNodeGraph;
use crate::job::TaskId;
use crate::scheduler::{fill_remote, TaskScheduler};

/// The delay-scheduling heuristic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DelayScheduler {
    /// Maximum number of consecutive heartbeats the job may be skipped before
    /// a remote task is launched. `None` uses one full sweep of the cluster.
    max_skips: Option<usize>,
}

impl DelayScheduler {
    /// Creates a delay scheduler with an explicit skip budget.
    pub fn new(max_skips: usize) -> Self {
        DelayScheduler {
            max_skips: Some(max_skips),
        }
    }

    /// Creates a delay scheduler whose skip budget equals the cluster size
    /// (one full heartbeat sweep), matching the paper's configuration.
    pub fn full_sweep() -> Self {
        DelayScheduler { max_skips: None }
    }
}

impl TaskScheduler for DelayScheduler {
    fn name(&self) -> &str {
        "delay-scheduling"
    }

    fn assign(
        &self,
        graph: &TaskNodeGraph,
        capacities: &BTreeMap<NodeId, usize>,
        rng: &mut dyn RngCore,
    ) -> Assignment {
        let mut capacities = capacities.clone();
        let max_skips = self.max_skips.unwrap_or_else(|| graph.nodes().len().max(1));
        let mut pending: Vec<bool> = vec![true; graph.task_count()];
        let mut pending_count = graph.task_count();
        let mut out: Vec<TaskAssignment> = Vec::with_capacity(graph.task_count());
        let mut skip_count = 0usize;

        // Heartbeat loop: repeatedly sweep the nodes (in random order per
        // sweep, as heartbeat arrival order is arbitrary) while there is both
        // pending work and free capacity.
        let mut heartbeat_order: Vec<NodeId> = graph.nodes().to_vec();
        'outer: loop {
            if pending_count == 0 {
                break;
            }
            let total_capacity: usize = capacities.values().sum();
            if total_capacity == 0 {
                break;
            }
            heartbeat_order.shuffle(rng);
            let mut progressed = false;
            for &node in &heartbeat_order {
                if pending_count == 0 {
                    break 'outer;
                }
                let free = capacities.get(&node).copied().unwrap_or(0);
                if free == 0 {
                    continue;
                }
                // Look for a pending task with a replica on this node.
                let local_task = graph
                    .tasks_local_to(node)
                    .iter()
                    .copied()
                    .find(|t| pending[t.0]);
                match local_task {
                    Some(task) => {
                        pending[task.0] = false;
                        pending_count -= 1;
                        // drc-lint: allow(panic-hygiene): `node` was drawn from the capacities
                        // map entries with spare slots just above.
                        *capacities.get_mut(&node).expect("node exists") -= 1;
                        out.push(TaskAssignment {
                            task,
                            node,
                            local: true,
                        });
                        skip_count = 0;
                        progressed = true;
                    }
                    None => {
                        skip_count += 1;
                        if skip_count > max_skips {
                            // Give up on locality for one task.
                            let task = TaskId(
                                pending
                                    .iter()
                                    .position(|p| *p)
                                    // drc-lint: allow(panic-hygiene): the enclosing branch runs only while
                                    // pending_count > 0, so a pending entry exists.
                                    .expect("pending_count > 0 implies a pending task"),
                            );
                            pending[task.0] = false;
                            pending_count -= 1;
                            // drc-lint: allow(panic-hygiene): `node` was drawn from the capacities
                            // map entries with spare slots just above.
                            *capacities.get_mut(&node).expect("node exists") -= 1;
                            let local = graph.task(task).local_nodes.contains(&node);
                            out.push(TaskAssignment { task, node, local });
                            skip_count = 0;
                            progressed = true;
                        }
                    }
                }
            }
            if !progressed && skip_count == 0 {
                // Nothing could be scheduled at all this sweep (should not
                // happen, but guards against infinite loops).
                break;
            }
        }
        // Any tasks still pending once capacity is exhausted stay unassigned;
        // if capacity remains (only possible when every remaining task is
        // remote-only), spread them as remote tasks.
        let leftover: Vec<TaskId> = pending
            .iter()
            .enumerate()
            .filter(|(_, p)| **p)
            .map(|(i, _)| TaskId(i))
            .collect();
        if !leftover.is_empty() {
            fill_remote(graph, &leftover, &mut capacities, &mut out);
        }
        Assignment::new(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::MapTask;
    use drc_cluster::{Cluster, ClusterSpec, PlacementMap, PlacementPolicy};
    use drc_codes::CodeKind;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn graph_for(kind: CodeKind, stripes: usize, tasks: usize, seed: u64) -> TaskNodeGraph {
        let cluster = Cluster::new(ClusterSpec::simulation_25(4));
        let code = kind.build().unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            stripes,
            PlacementPolicy::Random,
            &mut rng,
        )
        .unwrap();
        let blocks = placement.data_blocks();
        let map_tasks: Vec<MapTask> = blocks
            .into_iter()
            .take(tasks)
            .enumerate()
            .map(|(i, block)| MapTask {
                id: crate::job::TaskId(i),
                block,
            })
            .collect();
        TaskNodeGraph::build(&map_tasks, &placement, &cluster)
    }

    fn capacities(graph: &TaskNodeGraph, slots: usize) -> BTreeMap<NodeId, usize> {
        graph.nodes().iter().map(|&n| (n, slots)).collect()
    }

    #[test]
    fn assigns_every_task_within_capacity() {
        let graph = graph_for(CodeKind::TWO_REP, 80, 80, 3);
        let caps = capacities(&graph, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let assignment = DelayScheduler::default().assign(&graph, &caps, &mut rng);
        assert_eq!(assignment.len(), 80);
        assert!(assignment.validate(&graph, 4).is_none());
    }

    #[test]
    fn respects_capacity_limit() {
        // 120 tasks but only 25 nodes x 2 slots = 50.
        let graph = graph_for(CodeKind::TWO_REP, 120, 120, 5);
        let caps = capacities(&graph, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let assignment = DelayScheduler::default().assign(&graph, &caps, &mut rng);
        assert_eq!(assignment.len(), 50);
        assert!(assignment.validate(&graph, 2).is_none());
    }

    #[test]
    fn two_rep_at_low_load_is_mostly_local() {
        // At 50% load with 2 replicas, delay scheduling should find local
        // slots for almost every task.
        let graph = graph_for(CodeKind::TWO_REP, 50, 50, 7);
        let caps = capacities(&graph, 4); // load = 50/100
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let assignment = DelayScheduler::default().assign(&graph, &caps, &mut rng);
        assert!(assignment.locality_percent() > 90.0);
    }

    #[test]
    fn small_skip_budget_reduces_locality() {
        let graph = graph_for(CodeKind::Pentagon, 12, 100, 11);
        let caps = capacities(&graph, 4);
        let mut rng_a = ChaCha8Rng::seed_from_u64(4);
        let mut rng_b = ChaCha8Rng::seed_from_u64(4);
        let patient = DelayScheduler::full_sweep().assign(&graph, &caps, &mut rng_a);
        let impatient = DelayScheduler::new(0).assign(&graph, &caps, &mut rng_b);
        assert!(patient.locality_percent() >= impatient.locality_percent());
    }

    #[test]
    fn empty_graph_yields_empty_assignment() {
        let graph = graph_for(CodeKind::TWO_REP, 5, 0, 13);
        let caps = capacities(&graph, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let assignment = DelayScheduler::default().assign(&graph, &caps, &mut rng);
        assert!(assignment.is_empty());
    }
}
