//! Offline maximum bipartite matching between tasks and node slots.
//!
//! §3.2 uses maximum matching as the locality benchmark: it is the largest
//! number of tasks that can possibly be placed on nodes holding their blocks,
//! given the slot capacities. "From a practical point of view,
//! maximum-matching algorithms are computationally intensive", which is why
//! Hadoop uses delay scheduling instead — but for a simulator the instance
//! sizes are tiny.
//!
//! The implementation is the classic augmenting-path (Kuhn) algorithm run on
//! the capacity-expanded graph: each node contributes as many right-hand
//! vertices as it has free slots.

use std::collections::BTreeMap;

use rand::seq::SliceRandom;
use rand::RngCore;

use drc_cluster::NodeId;

use crate::assignment::{Assignment, TaskAssignment};
use crate::graph::TaskNodeGraph;
use crate::job::TaskId;
use crate::scheduler::{fill_remote, TaskScheduler};

/// Maximum-matching task assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MaxMatchingScheduler;

impl TaskScheduler for MaxMatchingScheduler {
    fn name(&self) -> &str {
        "max-matching"
    }

    fn assign(
        &self,
        graph: &TaskNodeGraph,
        capacities: &BTreeMap<NodeId, usize>,
        rng: &mut dyn RngCore,
    ) -> Assignment {
        let mut capacities = capacities.clone();

        // Build the capacity-expanded right-hand side: one vertex per free slot.
        let mut slot_owner: Vec<NodeId> = Vec::new();
        let mut node_slots: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
        for (&node, &cap) in &capacities {
            for _ in 0..cap {
                node_slots.entry(node).or_default().push(slot_owner.len());
                slot_owner.push(node);
            }
        }

        // Adjacency: task -> candidate slot indices (all slots of its local nodes).
        let mut adjacency: Vec<Vec<usize>> = Vec::with_capacity(graph.task_count());
        for t in graph.tasks() {
            let mut slots: Vec<usize> = t
                .local_nodes
                .iter()
                .flat_map(|n| node_slots.get(n).cloned().unwrap_or_default())
                .collect();
            // Randomising candidate order makes ties unbiased across trials.
            slots.shuffle(rng);
            adjacency.push(slots);
        }

        // Kuhn's algorithm.
        let mut slot_match: Vec<Option<TaskId>> = vec![None; slot_owner.len()];
        let mut task_match: Vec<Option<usize>> = vec![None; graph.task_count()];
        // Processing tasks in random order avoids systematic bias.
        let mut order: Vec<usize> = (0..graph.task_count()).collect();
        order.shuffle(rng);
        for &task in &order {
            let mut visited = vec![false; slot_owner.len()];
            try_augment(
                task,
                &adjacency,
                &mut slot_match,
                &mut task_match,
                &mut visited,
            );
        }

        // Emit local assignments from the matching.
        let mut out: Vec<TaskAssignment> = Vec::with_capacity(graph.task_count());
        let mut unmatched: Vec<TaskId> = Vec::new();
        for (task_idx, slot) in task_match.iter().enumerate() {
            let task = TaskId(task_idx);
            match slot {
                Some(s) => {
                    let node = slot_owner[*s];
                    // drc-lint: allow(panic-hygiene): `slot_owner` maps matched slots back
                    // to the capacities entries they were built from.
                    *capacities.get_mut(&node).expect("node exists") -= 1;
                    out.push(TaskAssignment {
                        task,
                        node,
                        local: true,
                    });
                }
                None => unmatched.push(task),
            }
        }
        // Whatever could not be matched locally is spread over the remaining slots.
        fill_remote(graph, &unmatched, &mut capacities, &mut out);
        Assignment::new(out)
    }
}

/// Attempts to find an augmenting path from `task`; returns `true` on success.
fn try_augment(
    task: usize,
    adjacency: &[Vec<usize>],
    slot_match: &mut Vec<Option<TaskId>>,
    task_match: &mut Vec<Option<usize>>,
    visited: &mut Vec<bool>,
) -> bool {
    for &slot in &adjacency[task] {
        if visited[slot] {
            continue;
        }
        visited[slot] = true;
        let free = match slot_match[slot] {
            None => true,
            Some(other) => try_augment(other.0, adjacency, slot_match, task_match, visited),
        };
        if free {
            slot_match[slot] = Some(TaskId(task));
            task_match[task] = Some(slot);
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::MapTask;
    use crate::scheduler::DelayScheduler;
    use drc_cluster::{Cluster, ClusterSpec, PlacementMap, PlacementPolicy};
    use drc_codes::CodeKind;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn graph_for(
        kind: CodeKind,
        tasks: usize,
        seed: u64,
        slots: usize,
    ) -> (TaskNodeGraph, BTreeMap<NodeId, usize>) {
        let cluster = Cluster::new(ClusterSpec::simulation_25(slots));
        let code = kind.build().unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let stripes = tasks.div_ceil(code.data_blocks());
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            stripes,
            PlacementPolicy::Random,
            &mut rng,
        )
        .unwrap();
        let map_tasks: Vec<MapTask> = placement
            .data_blocks()
            .into_iter()
            .take(tasks)
            .enumerate()
            .map(|(i, block)| MapTask {
                id: TaskId(i),
                block,
            })
            .collect();
        let graph = TaskNodeGraph::build(&map_tasks, &placement, &cluster);
        let caps = graph.nodes().iter().map(|&n| (n, slots)).collect();
        (graph, caps)
    }

    #[test]
    fn matches_everything_when_capacity_is_ample() {
        let (graph, caps) = graph_for(CodeKind::TWO_REP, 40, 1, 8);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let a = MaxMatchingScheduler.assign(&graph, &caps, &mut rng);
        assert_eq!(a.len(), 40);
        assert!(a.validate(&graph, 8).is_none());
        // 2-rep at 20% load: the optimum is full locality.
        assert_eq!(a.locality_percent(), 100.0);
    }

    #[test]
    fn never_below_delay_scheduling() {
        // Maximum matching is the locality optimum; it must dominate the
        // delay heuristic on the same instance.
        for (kind, tasks) in [
            (CodeKind::Pentagon, 100),
            (CodeKind::Heptagon, 100),
            (CodeKind::TWO_REP, 100),
        ] {
            let (graph, caps) = graph_for(kind, tasks, 23, 4);
            let mut rng1 = ChaCha8Rng::seed_from_u64(5);
            let mut rng2 = ChaCha8Rng::seed_from_u64(5);
            let mm = MaxMatchingScheduler.assign(&graph, &caps, &mut rng1);
            let ds = DelayScheduler::default().assign(&graph, &caps, &mut rng2);
            assert!(
                mm.local_tasks() >= ds.local_tasks(),
                "{kind}: matching {} < delay {}",
                mm.local_tasks(),
                ds.local_tasks()
            );
            assert!(mm.validate(&graph, 4).is_none());
        }
    }

    #[test]
    fn respects_capacities_under_overload() {
        let (graph, caps) = graph_for(CodeKind::Pentagon, 150, 3, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = MaxMatchingScheduler.assign(&graph, &caps, &mut rng);
        // 25 nodes x 4 slots = 100 assignments max.
        assert_eq!(a.len(), 100);
        assert!(a.validate(&graph, 4).is_none());
    }

    #[test]
    fn exact_optimum_on_a_hand_built_instance() {
        // Two tasks share the only replica-holding node with one slot; the
        // optimum places exactly one of them locally.
        use drc_cluster::GlobalBlockId;
        let cluster = Cluster::new(ClusterSpec::custom(3, 1, 1));
        let code = CodeKind::Replication { replicas: 1 }.build().unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            2,
            PlacementPolicy::RoundRobin,
            &mut rng,
        )
        .unwrap();
        // Both stripes land on node 0 and node 1 respectively under round-robin;
        // craft tasks referencing stripe 0's block twice to force contention.
        let block = GlobalBlockId::new(0, 0);
        let tasks = vec![
            MapTask {
                id: TaskId(0),
                block,
            },
            MapTask {
                id: TaskId(1),
                block,
            },
        ];
        let graph = TaskNodeGraph::build(&tasks, &placement, &cluster);
        let caps: BTreeMap<NodeId, usize> = cluster.nodes().map(|n| (n, 1)).collect();
        let a = MaxMatchingScheduler.assign(&graph, &caps, &mut rng);
        assert_eq!(a.len(), 2);
        assert_eq!(a.local_tasks(), 1);
    }
}
