//! The degree-guided peeling heuristic of Xie & Lu (ISIT 2012), modified for
//! array codes.
//!
//! The idea: tasks whose block survives on few candidate nodes are the ones
//! that lose locality when scheduled late, so they should be *peeled* first —
//! a task with a single remaining candidate is assigned there immediately;
//! otherwise the scheduler picks a most-constrained task and sends it to its
//! least-contended candidate node. The modification needed for the
//! pentagon/heptagon codes is to track per-node remaining slot capacity
//! rather than assuming one block per node, because these codes concentrate
//! several blocks of a stripe on the same node (Fig. 2); the capacity
//! bookkeeping below handles that directly.

use std::collections::BTreeMap;

use rand::RngCore;

use drc_cluster::NodeId;

use crate::assignment::{Assignment, TaskAssignment};
use crate::graph::TaskNodeGraph;
use crate::job::TaskId;
use crate::scheduler::{fill_remote, TaskScheduler};

/// Degree-guided peeling task assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PeelingScheduler;

impl TaskScheduler for PeelingScheduler {
    fn name(&self) -> &str {
        "peeling"
    }

    fn assign(
        &self,
        graph: &TaskNodeGraph,
        capacities: &BTreeMap<NodeId, usize>,
        rng: &mut dyn RngCore,
    ) -> Assignment {
        let _ = rng; // deterministic given the graph; kept for interface symmetry
        let mut capacities = capacities.clone();
        let mut out: Vec<TaskAssignment> = Vec::with_capacity(graph.task_count());
        // remaining[t] = candidate nodes of task t that still have capacity.
        let mut remaining: Vec<Option<Vec<NodeId>>> = graph
            .tasks()
            .iter()
            .map(|t| {
                Some(
                    t.local_nodes
                        .iter()
                        .copied()
                        .filter(|n| capacities.get(n).copied().unwrap_or(0) > 0)
                        .collect(),
                )
            })
            .collect();
        // node -> pending local demand (for picking the least-contended node).
        let mut node_demand: BTreeMap<NodeId, usize> = BTreeMap::new();
        for cand in remaining.iter().flatten() {
            for &n in cand {
                *node_demand.entry(n).or_insert(0) += 1;
            }
        }

        let mut leftovers: Vec<TaskId> = Vec::new();
        loop {
            // Find the unassigned task with the smallest positive degree.
            let mut best: Option<(usize, usize)> = None; // (degree, task index)
            for (idx, cand) in remaining.iter().enumerate() {
                if let Some(c) = cand {
                    if c.is_empty() {
                        continue;
                    }
                    let d = c.len();
                    if best.is_none_or(|(bd, _)| d < bd) {
                        best = Some((d, idx));
                        if d == 1 {
                            break; // cannot do better than a forced task
                        }
                    }
                }
            }
            let Some((_, task_idx)) = best else {
                break;
            };
            // drc-lint: allow(panic-hygiene): `best` only ranks indices whose
            // candidate list is still `Some` in the scan above.
            let candidates = remaining[task_idx].take().expect("candidate list exists");
            // Degree-guided choice: the candidate node with the fewest other
            // pending local tasks per unit of remaining capacity.
            let node = candidates
                .iter()
                .copied()
                .filter(|n| capacities.get(n).copied().unwrap_or(0) > 0)
                .min_by_key(|n| {
                    let demand = node_demand.get(n).copied().unwrap_or(0);
                    let cap = capacities.get(n).copied().unwrap_or(0).max(1);
                    // Scale to compare demand-per-slot without floating point.
                    (demand * 1024 / cap, n.0)
                });
            let Some(node) = node else {
                // All candidates filled up in the meantime; defer to remote fill.
                leftovers.push(TaskId(task_idx));
                continue;
            };
            out.push(TaskAssignment {
                task: TaskId(task_idx),
                node,
                local: true,
            });
            // Update bookkeeping.
            for &n in &candidates {
                if let Some(d) = node_demand.get_mut(&n) {
                    *d = d.saturating_sub(1);
                }
            }
            // drc-lint: allow(panic-hygiene): `node` came from `candidates`, which
            // is filtered against capacities entries with spare slots.
            let cap = capacities.get_mut(&node).expect("node exists");
            *cap -= 1;
            if *cap == 0 {
                // Remove the exhausted node from every remaining candidate list.
                for cand in remaining.iter_mut().flatten() {
                    cand.retain(|&n| n != node);
                }
            }
        }
        // Tasks with no (remaining) local candidates are assigned remotely.
        for (idx, cand) in remaining.iter().enumerate() {
            if cand.is_some() {
                leftovers.push(TaskId(idx));
            }
        }
        leftovers.sort_unstable();
        leftovers.dedup();
        fill_remote(graph, &leftovers, &mut capacities, &mut out);
        Assignment::new(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::MapTask;
    use crate::scheduler::{DelayScheduler, MaxMatchingScheduler};
    use drc_cluster::{Cluster, ClusterSpec, PlacementMap, PlacementPolicy};
    use drc_codes::CodeKind;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn instance(
        kind: CodeKind,
        tasks: usize,
        slots: usize,
        seed: u64,
    ) -> (TaskNodeGraph, BTreeMap<NodeId, usize>) {
        let cluster = Cluster::new(ClusterSpec::simulation_25(slots));
        let code = kind.build().unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let stripes = tasks.div_ceil(code.data_blocks());
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            stripes,
            PlacementPolicy::Random,
            &mut rng,
        )
        .unwrap();
        let map_tasks: Vec<MapTask> = placement
            .data_blocks()
            .into_iter()
            .take(tasks)
            .enumerate()
            .map(|(i, block)| MapTask {
                id: TaskId(i),
                block,
            })
            .collect();
        let graph = TaskNodeGraph::build(&map_tasks, &placement, &cluster);
        let caps = graph.nodes().iter().map(|&n| (n, slots)).collect();
        (graph, caps)
    }

    #[test]
    fn produces_valid_assignments() {
        for kind in [CodeKind::Pentagon, CodeKind::Heptagon, CodeKind::TWO_REP] {
            let (graph, caps) = instance(kind, 100, 4, 31);
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            let a = PeelingScheduler.assign(&graph, &caps, &mut rng);
            assert_eq!(a.len(), 100, "{kind}");
            assert!(a.validate(&graph, 4).is_none(), "{kind}");
        }
    }

    #[test]
    fn peeling_sits_between_delay_and_matching_on_average() {
        // Fig. 3 (bottom-right): peeling improves on delay scheduling and is
        // bounded by maximum matching. Individual instances can tie, so check
        // the aggregate over several seeds.
        let mut delay_total = 0usize;
        let mut peel_total = 0usize;
        let mut match_total = 0usize;
        for seed in 0..10u64 {
            let (graph, caps) = instance(CodeKind::Pentagon, 100, 4, seed);
            let mut r1 = ChaCha8Rng::seed_from_u64(seed);
            let mut r2 = ChaCha8Rng::seed_from_u64(seed);
            let mut r3 = ChaCha8Rng::seed_from_u64(seed);
            delay_total += DelayScheduler::default()
                .assign(&graph, &caps, &mut r1)
                .local_tasks();
            peel_total += PeelingScheduler
                .assign(&graph, &caps, &mut r2)
                .local_tasks();
            match_total += MaxMatchingScheduler
                .assign(&graph, &caps, &mut r3)
                .local_tasks();
        }
        assert!(
            peel_total >= delay_total,
            "peeling {peel_total} < delay {delay_total}"
        );
        assert!(
            match_total >= peel_total,
            "matching {match_total} < peeling {peel_total}"
        );
    }

    #[test]
    fn forced_tasks_are_peeled_first() {
        // With a single slot per node, degree-1 tasks must keep their only
        // candidate; peeling guarantees that.
        let (graph, caps) = instance(CodeKind::TWO_REP, 25, 1, 17);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let a = PeelingScheduler.assign(&graph, &caps, &mut rng);
        assert_eq!(a.len(), 25);
        assert!(a.validate(&graph, 1).is_none());
    }

    #[test]
    fn handles_overload_gracefully() {
        let (graph, caps) = instance(CodeKind::Heptagon, 140, 4, 19);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let a = PeelingScheduler.assign(&graph, &caps, &mut rng);
        assert_eq!(a.len(), 100);
        assert!(a.validate(&graph, 4).is_none());
    }
}
