//! Map-task schedulers.
//!
//! Three assignment strategies are evaluated in §3.2 of the paper:
//!
//! * [`DelayScheduler`] — Hadoop's production heuristic (Zaharia et al.,
//!   EuroSys 2010): a node that cannot be given a local task is skipped a
//!   bounded number of times before the scheduler settles for a remote task,
//! * [`MaxMatchingScheduler`] — an offline maximum bipartite matching between
//!   tasks and node slots, the locality upper bound used as a benchmark,
//! * [`PeelingScheduler`] — the degree-guided peeling heuristic of Xie & Lu
//!   (ISIT 2012), modified to handle the block concentration of the
//!   pentagon/heptagon array codes.
//!
//! All schedulers consume the same [`TaskNodeGraph`] and produce an
//! [`Assignment`]; tasks that cannot be placed locally are spread over the
//! remaining slot capacity as remote tasks.
//!
//! Assignments are executed on the virtual-time substrate: every placement a
//! scheduler makes turns into a timed slot reservation in the engine (local
//! tasks consume disk-bound durations, remote and degraded tasks
//! network-bound ones), so scheduler quality shows up directly as
//! virtual-time wave length and LAN queueing, not just as a locality
//! percentage.

mod delay;
mod matching;
mod peeling;

use std::collections::BTreeMap;

use rand::RngCore;

use drc_cluster::NodeId;

use crate::assignment::{Assignment, TaskAssignment};
use crate::graph::TaskNodeGraph;
use crate::job::TaskId;

pub use delay::DelayScheduler;
pub use matching::MaxMatchingScheduler;
pub use peeling::PeelingScheduler;

/// A map-task scheduler: assigns the tasks of a [`TaskNodeGraph`] to nodes,
/// subject to per-node slot capacities.
pub trait TaskScheduler: std::fmt::Debug + Send + Sync {
    /// Short human-readable name (used in experiment output).
    fn name(&self) -> &str;

    /// Assigns as many tasks as the capacities allow.
    ///
    /// Implementations must never assign a task twice nor exceed any node's
    /// capacity; tasks left over when every slot is full remain unassigned.
    fn assign(
        &self,
        graph: &TaskNodeGraph,
        capacities: &BTreeMap<NodeId, usize>,
        rng: &mut dyn RngCore,
    ) -> Assignment;
}

/// Which scheduler to use, for experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
#[non_exhaustive]
pub enum SchedulerKind {
    /// Hadoop's delay scheduling with the given maximum number of skipped
    /// heartbeats (`None` = one full sweep of the cluster).
    Delay,
    /// Offline maximum bipartite matching.
    MaxMatching,
    /// Degree-guided peeling.
    Peeling,
}

impl SchedulerKind {
    /// Builds the scheduler with its default parameters.
    pub fn build(&self) -> Box<dyn TaskScheduler> {
        match self {
            SchedulerKind::Delay => Box::new(DelayScheduler::default()),
            SchedulerKind::MaxMatching => Box::new(MaxMatchingScheduler),
            SchedulerKind::Peeling => Box::new(PeelingScheduler),
        }
    }

    /// The three schedulers simulated for Fig. 3.
    pub fn all() -> Vec<SchedulerKind> {
        vec![
            SchedulerKind::Delay,
            SchedulerKind::MaxMatching,
            SchedulerKind::Peeling,
        ]
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulerKind::Delay => write!(f, "delay-scheduling"),
            SchedulerKind::MaxMatching => write!(f, "max-matching"),
            SchedulerKind::Peeling => write!(f, "peeling"),
        }
    }
}

/// Assigns the remaining (non-local) tasks to whatever slots are left,
/// spreading them over the least-loaded nodes first. Shared by all
/// schedulers.
pub(crate) fn fill_remote(
    graph: &TaskNodeGraph,
    pending: &[TaskId],
    capacities: &mut BTreeMap<NodeId, usize>,
    out: &mut Vec<TaskAssignment>,
) {
    for &task in pending {
        // Pick the node with the largest remaining capacity (ties broken by id).
        let Some((&node, _)) = capacities
            .iter()
            .filter(|(_, &c)| c > 0)
            .max_by_key(|(n, &c)| (c, std::cmp::Reverse(n.0)))
        else {
            return; // no capacity anywhere; leave the rest unassigned
        };
        // drc-lint: allow(panic-hygiene): `node` is the argmax over entries of
        // this very map, selected in the let-else above.
        *capacities.get_mut(&node).expect("node exists") -= 1;
        let local = graph.task(task).local_nodes.contains(&node);
        out.push(TaskAssignment { task, node, local });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_kinds_build_and_display() {
        for kind in SchedulerKind::all() {
            let s = kind.build();
            assert!(!s.name().is_empty());
            assert!(!kind.to_string().is_empty());
        }
        assert_eq!(SchedulerKind::all().len(), 3);
    }
}
