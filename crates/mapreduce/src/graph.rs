//! The task–node bipartite graph of §3.2.
//!
//! "The map-task-assignment problem can be modeled as a maximum-matching
//! problem on a bipartite graph, with the tasks on one side and the nodes on
//! the other. The edges on this graph indicate the nodes where the replicas
//! of the blocks reside." The choice of code determines the right-hand degree
//! structure: with the pentagon code all blocks of one stripe-node map onto
//! one cluster node (Fig. 2), concentrating edges.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use drc_cluster::{Cluster, GlobalBlockId, NodeId, NodeList, PlacementMap};

use crate::job::{MapTask, TaskId};

/// The bipartite graph between map tasks and the cluster nodes that can run
/// them locally.
///
/// Only *up* nodes appear in the graph; a task whose every replica is on a
/// down node has no edges and can only run remotely (with a degraded read).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskNodeGraph {
    tasks: Vec<TaskVertex>,
    nodes: Vec<NodeId>,
    node_tasks: BTreeMap<NodeId, Vec<TaskId>>,
}

/// A task vertex together with its adjacency (the up nodes holding a replica
/// of its block).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskVertex {
    /// The task.
    pub task: TaskId,
    /// The block the task reads.
    pub block: GlobalBlockId,
    /// Up cluster nodes holding a replica of the block (the task's edges).
    pub local_nodes: NodeList,
}

impl TaskNodeGraph {
    /// Builds the graph for `tasks` given the block placement and the current
    /// cluster liveness.
    pub fn build(tasks: &[MapTask], placement: &PlacementMap, cluster: &Cluster) -> Self {
        let nodes: Vec<NodeId> = cluster.up_nodes();
        let mut node_tasks: BTreeMap<NodeId, Vec<TaskId>> =
            nodes.iter().map(|&n| (n, Vec::new())).collect();
        let mut vertices = Vec::with_capacity(tasks.len());
        for task in tasks {
            // The engine validates every job block against the placement up
            // front, so an unknown block here (graphs are also built from
            // raw task lists in tests) simply gets no edges and runs remote.
            let local_nodes: NodeList = placement
                .locations(task.block)
                .map(|locs| locs.iter().copied().filter(|n| cluster.is_up(*n)).collect())
                .unwrap_or_default();
            for &n in &local_nodes {
                node_tasks.entry(n).or_default().push(task.id);
            }
            vertices.push(TaskVertex {
                task: task.id,
                block: task.block,
                local_nodes,
            });
        }
        TaskNodeGraph {
            tasks: vertices,
            nodes,
            node_tasks,
        }
    }

    /// The task vertices, in task-id order.
    pub fn tasks(&self) -> &[TaskVertex] {
        &self.tasks
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// The up nodes (right-hand vertices), in id order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The vertex for a task.
    ///
    /// # Panics
    ///
    /// Panics if the task id is out of range.
    pub fn task(&self, id: TaskId) -> &TaskVertex {
        &self.tasks[id.0]
    }

    /// The tasks that could run locally on `node`.
    pub fn tasks_local_to(&self, node: NodeId) -> &[TaskId] {
        self.node_tasks.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Left-hand degree of a task (number of nodes that can serve it locally).
    pub fn task_degree(&self, id: TaskId) -> usize {
        self.tasks[id.0].local_nodes.len()
    }

    /// Right-hand degree of a node (number of tasks with a local replica there).
    pub fn node_degree(&self, node: NodeId) -> usize {
        self.tasks_local_to(node).len()
    }

    /// Mean number of local candidate nodes per task.
    pub fn mean_task_degree(&self) -> f64 {
        if self.tasks.is_empty() {
            return 0.0;
        }
        self.tasks
            .iter()
            .map(|t| t.local_nodes.len())
            .sum::<usize>() as f64
            / self.tasks.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drc_cluster::{ClusterSpec, PlacementPolicy};
    use drc_codes::CodeKind;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup(kind: CodeKind, stripes: usize) -> (Cluster, PlacementMap, Vec<MapTask>) {
        let cluster = Cluster::new(ClusterSpec::simulation_25(4));
        let code = kind.build().unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            stripes,
            PlacementPolicy::Random,
            &mut rng,
        )
        .unwrap();
        let tasks: Vec<MapTask> = placement
            .data_blocks()
            .into_iter()
            .enumerate()
            .map(|(i, block)| MapTask {
                id: TaskId(i),
                block,
            })
            .collect();
        (cluster, placement, tasks)
    }

    #[test]
    fn pentagon_graph_has_left_degree_two() {
        // Fig. 2: "left degree = 2" for the pentagon code.
        let (cluster, placement, tasks) = setup(CodeKind::Pentagon, 5);
        let graph = TaskNodeGraph::build(&tasks, &placement, &cluster);
        assert_eq!(graph.task_count(), 45);
        for t in graph.tasks() {
            assert_eq!(t.local_nodes.len(), 2);
            assert_eq!(graph.task_degree(t.task), 2);
        }
        assert!((graph.mean_task_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn node_degrees_reflect_block_concentration() {
        // Each pentagon stripe places 4 of its 9 data-block tasks... more
        // precisely: a node hosting a pentagon stripe-node can serve locally
        // every data block stored there (3 or 4 of the 9, depending on
        // whether the parity edge is incident).
        let (cluster, placement, tasks) = setup(CodeKind::Pentagon, 1);
        let graph = TaskNodeGraph::build(&tasks, &placement, &cluster);
        let used: Vec<NodeId> = placement.stripe_hosts(0).unwrap().to_vec();
        for &node in &used {
            let d = graph.node_degree(node);
            assert!(d == 3 || d == 4, "degree {d}");
        }
        // Unused nodes have degree zero.
        let unused = cluster.nodes().find(|n| !used.contains(n)).unwrap();
        assert_eq!(graph.node_degree(unused), 0);
        // Consistency between the two adjacency directions.
        for t in graph.tasks() {
            for &n in &t.local_nodes {
                assert!(graph.tasks_local_to(n).contains(&t.task));
            }
        }
    }

    #[test]
    fn down_nodes_drop_out_of_the_graph() {
        let (mut cluster, placement, tasks) = setup(CodeKind::TWO_REP, 30);
        let victim = placement.locations(tasks[0].block).unwrap()[0];
        cluster.set_down(victim);
        let graph = TaskNodeGraph::build(&tasks, &placement, &cluster);
        assert_eq!(graph.nodes().len(), 24);
        assert!(!graph.nodes().contains(&victim));
        // Task 0 lost one of its two candidate nodes.
        assert_eq!(graph.task_degree(TaskId(0)), 1);
        assert!(graph.tasks_local_to(victim).is_empty());
    }

    #[test]
    fn empty_task_list_gives_empty_graph() {
        let (cluster, placement, _) = setup(CodeKind::TWO_REP, 1);
        let graph = TaskNodeGraph::build(&[], &placement, &cluster);
        assert_eq!(graph.task_count(), 0);
        assert_eq!(graph.mean_task_degree(), 0.0);
        assert_eq!(graph.nodes().len(), 25);
    }
}
