//! MapReduce task scheduling and execution simulation for the
//! double-replication Hadoop codes.
//!
//! The paper's central question is how the pentagon / heptagon array codes —
//! which concentrate several blocks of a stripe on the same node — affect
//! MapReduce behaviour. This crate provides the three layers needed to answer
//! it without a physical Hadoop cluster:
//!
//! * the **task–node bipartite graph** of §3.2 ([`TaskNodeGraph`]),
//! * the three **schedulers** compared in Fig. 3 ([`DelayScheduler`],
//!   [`MaxMatchingScheduler`], [`PeelingScheduler`]) behind the common
//!   [`TaskScheduler`] trait,
//! * the **locality simulation** ([`simulate_locality`], Fig. 3) and the
//!   **discrete-event execution engine** ([`run_job`], Fig. 4/5) that report
//!   data locality, job time and network traffic. Every phase — map waves,
//!   shuffle fetches, reduce merges and output writes — is discrete events
//!   on the `drc_sim` substrate; [`run_job_on`] executes against a *shared*
//!   `ClusterNet` so the job contends with storage-layer repair and
//!   degraded-read traffic for the same NICs, disks and LAN fabric
//!   (per-link queueing is reported in [`LinkContention`]).
//!
//! # Example: one Fig. 3 point
//!
//! ```
//! use drc_codes::CodeKind;
//! use drc_mapreduce::{simulate_locality, LocalityConfig, SchedulerKind};
//!
//! # fn main() -> Result<(), drc_mapreduce::MapReduceError> {
//! let config = LocalityConfig::new(CodeKind::Pentagon, SchedulerKind::Delay, 4, 75.0)
//!     .with_trials(20);
//! let result = simulate_locality(&config)?;
//! assert!(result.mean_locality_percent > 50.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
mod engine;
mod error;
mod graph;
mod job;
mod locality;
mod scheduler;

pub use assignment::{Assignment, TaskAssignment};
pub use engine::{
    run_job, run_job_on, run_job_traced, FailureModel, JobMetrics, JobSite, LinkContention,
};
pub use error::MapReduceError;
pub use graph::{TaskNodeGraph, TaskVertex};
pub use job::{JobSpec, MapTask, TaskId};
pub use locality::{simulate_locality, LocalityConfig, LocalityResult};
pub use scheduler::{
    DelayScheduler, MaxMatchingScheduler, PeelingScheduler, SchedulerKind, TaskScheduler,
};
