//! A discrete-event MapReduce execution engine.
//!
//! This is the substitute for the paper's physical Hadoop clusters (§4): it
//! executes a [`JobSpec`] against a block placement on a cluster, using one of
//! the task schedulers, and reports the three quantities Fig. 4 and Fig. 5
//! plot — job execution time, network traffic and data locality — plus
//! degraded-read statistics for the failure experiments.
//!
//! The model is deliberately simple but mechanistic: map tasks read their
//! block from local disk or over the network (or rebuild it with a degraded
//! read when every replica is unreachable), spend CPU time proportional to
//! the input, and occupy a map slot for their duration; the shuffle moves the
//! map output across the network to the reducers; reducers then merge and
//! write their output. Absolute times depend on the bandwidth constants in
//! [`ClusterSpec`], but the *differences between codes* come only from
//! locality and degraded reads — exactly the mechanism the paper identifies.
//!
//! Since PR 2 the engine runs on the `drc_sim` substrate: map slots are
//! unit-capacity [`Resource`]s, the shared LAN is a bandwidth server, and
//! every task duration the schedulers' placements induce is consumed as a
//! virtual-time reservation. [`JobMetrics::timeline`] records the per-wave
//! phases (including degraded-read spans), so contention between waves and
//! reconstruction traffic is visible instead of being summed serially.

use std::collections::{BTreeMap, BTreeSet};

use rand::RngCore;
use serde::{Deserialize, Serialize};

use drc_cluster::{Cluster, NodeId, PlacementMap};
use drc_codes::ErasureCode;
use drc_sim::{Resource, SimDuration, SimTime, Timeline};

use crate::assignment::Assignment;
use crate::graph::TaskNodeGraph;
use crate::job::{JobSpec, MapTask};
use crate::scheduler::TaskScheduler;
use crate::MapReduceError;

/// Measurements from one simulated job execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobMetrics {
    /// Name of the job.
    pub job: String,
    /// Name of the code whose placement was used.
    pub code: String,
    /// Total job execution time in seconds (map phase + reduce phase).
    pub job_time_s: f64,
    /// Duration of the map phase in seconds.
    pub map_phase_s: f64,
    /// Duration of the shuffle + reduce phase in seconds.
    pub reduce_phase_s: f64,
    /// Total bytes that crossed the network during the job.
    pub network_traffic_bytes: u64,
    /// Bytes of map input fetched remotely (replica reads from other nodes).
    pub remote_input_bytes: u64,
    /// Bytes fetched to serve degraded reads (reconstruction traffic).
    pub degraded_read_bytes: u64,
    /// Bytes of map output moved across the network during the shuffle.
    pub shuffle_bytes: u64,
    /// Number of map tasks.
    pub map_tasks: usize,
    /// Number of map tasks that ran on a node holding their block.
    pub local_map_tasks: usize,
    /// Number of map tasks that needed a degraded read (no live replica).
    pub degraded_reads: usize,
    /// Per-phase virtual-time record: one `map:wave<i>` phase per scheduling
    /// wave (plus a `degraded-read:wave<i>` span when reconstruction traffic
    /// was in flight) and a final `shuffle+reduce` phase.
    pub timeline: Timeline,
}

impl JobMetrics {
    /// Data locality in percent (the paper's metric).
    pub fn data_locality_percent(&self) -> f64 {
        if self.map_tasks == 0 {
            return 100.0;
        }
        self.local_map_tasks as f64 / self.map_tasks as f64 * 100.0
    }

    /// Network traffic in GiB (the unit of Fig. 4 and Fig. 5).
    pub fn network_traffic_gb(&self) -> f64 {
        self.network_traffic_bytes as f64 / (1024.0 * 1024.0 * 1024.0)
    }
}

/// Runs `job` on `cluster` against `placement`, scheduling map tasks with
/// `scheduler`. `code` must be the code the placement was built with; it is
/// used to plan degraded reads when every replica of a block is unreachable.
///
/// # Errors
///
/// Returns [`MapReduceError::InvalidConfig`] if a task references a block that
/// is not in the placement, or [`MapReduceError::UnreadableBlock`] if a block
/// cannot be served at all (more failures than the code tolerates).
pub fn run_job(
    job: &JobSpec,
    code: &dyn ErasureCode,
    placement: &PlacementMap,
    cluster: &Cluster,
    scheduler: &dyn TaskScheduler,
    rng: &mut dyn RngCore,
) -> Result<JobMetrics, MapReduceError> {
    let spec = cluster.spec();
    let block_mb = spec.block_size_mb as f64;
    let block_bytes = spec.block_size_bytes();

    for task in job.map_tasks() {
        if placement.block_locations(task.block).is_empty() {
            return Err(MapReduceError::InvalidConfig {
                reason: format!(
                    "task block {:?} is not present in the placement",
                    task.block
                ),
            });
        }
    }

    // ---- Map phase -------------------------------------------------------
    let mut pending: Vec<MapTask> = job.map_tasks().to_vec();
    let slots = spec.map_slots_per_node;
    // Map slots as unit-capacity virtual-time resources, one per slot: a
    // task's duration is *consumed* as a reservation, so slot contention and
    // wave pipelining fall out of the substrate instead of hand-rolled
    // availability arrays.
    let node_slots: BTreeMap<NodeId, Vec<Resource>> = cluster
        .up_nodes()
        .into_iter()
        .map(|n| (n, (0..slots).map(|_| Resource::new(0.0)).collect()))
        .collect();
    // The shared LAN fabric: aggregate remote traffic queues through it at
    // cluster-wide bandwidth.
    let aggregate_bw = spec.network_bandwidth_mbps * cluster.up_nodes().len().max(1) as f64;
    let lan = Resource::new(aggregate_bw);
    let mut timeline = Timeline::new();
    let mut wave_start = SimTime::ZERO;
    let mut map_phase_end = SimTime::ZERO;
    let mut wave_index = 0usize;

    let mut remote_input_bytes = 0u64;
    let mut degraded_read_bytes = 0u64;
    let mut local_map_tasks = 0usize;
    let mut degraded_reads = 0usize;

    while !pending.is_empty() {
        let graph = TaskNodeGraph::build(&pending, placement, cluster);
        let capacities: BTreeMap<NodeId, usize> =
            graph.nodes().iter().map(|&n| (n, slots)).collect();
        let assignment: Assignment = scheduler.assign(&graph, &capacities, rng);
        if assignment.is_empty() {
            return Err(MapReduceError::InvalidConfig {
                reason: "scheduler made no progress (no capacity available)".to_string(),
            });
        }
        let assigned_ids: BTreeSet<usize> = assignment.iter().map(|a| a.task.0).collect();
        let mut wave_network_bytes = 0u64;
        let mut wave_degraded_bytes = 0u64;
        let mut wave_end = wave_start;

        for a in assignment.iter() {
            let task = pending[a.task.0];
            // Read cost.
            let (read_s, remote_bytes, degraded_bytes) = if a.local {
                (block_mb / spec.disk_bandwidth_mbps, 0u64, 0u64)
            } else {
                // Which stripe-local nodes are down for this block's stripe?
                let stripe_nodes = &placement.stripes()[task.block.stripe].nodes;
                let down_local: BTreeSet<usize> = stripe_nodes
                    .iter()
                    .enumerate()
                    .filter(|(_, n)| !cluster.is_up(**n))
                    .map(|(i, _)| i)
                    .collect();
                let replicas_alive = placement
                    .block_locations(task.block)
                    .iter()
                    .any(|n| cluster.is_up(*n));
                if replicas_alive {
                    // Plain remote read of one block.
                    (block_mb / spec.network_bandwidth_mbps, block_bytes, 0u64)
                } else {
                    // Degraded read: rebuild from the code's plan.
                    let plan = code
                        .degraded_read_plan(task.block.block, &down_local)
                        .map_err(|source| MapReduceError::UnreadableBlock {
                            block: task.block,
                            source,
                        })?;
                    let bytes = plan.network_blocks as u64 * block_bytes;
                    degraded_reads += 1;
                    (
                        plan.network_blocks as f64 * block_mb / spec.network_bandwidth_mbps,
                        0u64,
                        bytes,
                    )
                }
            };
            if a.local {
                local_map_tasks += 1;
            }
            remote_input_bytes += remote_bytes;
            degraded_read_bytes += degraded_bytes;
            wave_network_bytes += remote_bytes + degraded_bytes;
            wave_degraded_bytes += degraded_bytes;

            let run_s = job.task_overhead_s() + read_s + block_mb * job.map_cpu_s_per_mb();
            // Consume the task's duration on the earliest-free slot of the
            // assigned node.
            let slot_times = node_slots
                .get(&a.node)
                .expect("assignment only uses up nodes");
            let slot = slot_times
                .iter()
                .min_by_key(|s| s.next_free())
                .expect("at least one slot per node");
            let res = slot.reserve_for(wave_start, SimDuration::from_secs_f64(run_s));
            wave_end = wave_end.max(res.end);
        }
        // The cluster's LAN is shared: if the wave's remote reads exceed what
        // the aggregate network can move while the slots are busy, the map
        // phase is network-bound and stretches accordingly. This is the
        // mechanism behind the paper's observation that lost locality costs
        // job time, not just traffic.
        let lan_res = lan.reserve_bytes(wave_start, wave_network_bytes);
        wave_end = wave_end.max(lan_res.end);
        timeline.record(
            format!("map:wave{wave_index}"),
            wave_start,
            wave_end,
            wave_network_bytes,
        );
        if wave_degraded_bytes > 0 {
            timeline.record(
                format!("degraded-read:wave{wave_index}"),
                wave_start,
                wave_end,
                wave_degraded_bytes,
            );
        }
        map_phase_end = map_phase_end.max(wave_end);
        wave_index += 1;

        // Remove assigned tasks; renumber the remainder for the next wave.
        pending = pending
            .iter()
            .enumerate()
            .filter(|(i, _)| !assigned_ids.contains(i))
            .map(|(_, t)| *t)
            .collect();
        for (i, t) in pending.iter_mut().enumerate() {
            t.id = crate::job::TaskId(i);
        }
        wave_start = map_phase_end;
    }

    // ---- Shuffle + reduce phase -------------------------------------------
    let input_bytes = job.map_tasks().len() as u64 * block_bytes;
    let map_output_bytes = (input_bytes as f64 * job.shuffle_ratio()) as u64;
    let reduce_nodes = cluster.up_nodes().len().min(job.reduce_tasks()).max(1);
    // Fraction of map output that must cross the network: everything except
    // the share produced on the same node as its reducer.
    let network_fraction = 1.0 - 1.0 / cluster.up_nodes().len().max(1) as f64;
    let shuffle_bytes = (map_output_bytes as f64 * network_fraction) as u64;

    let reduce_phase_s = if job.reduce_tasks() == 0 || map_output_bytes == 0 {
        0.0
    } else {
        let per_reducer_mb =
            map_output_bytes as f64 / (1024.0 * 1024.0) / job.reduce_tasks() as f64;
        let reducers_per_node = job.reduce_tasks().div_ceil(reduce_nodes) as f64;
        // Shuffle fetch, merge/CPU, and output write, per reducer wave.
        let fetch_s = per_reducer_mb * network_fraction / spec.network_bandwidth_mbps;
        let cpu_s = per_reducer_mb * job.reduce_cpu_s_per_mb();
        let write_s = per_reducer_mb / spec.disk_bandwidth_mbps;
        job.task_overhead_s() + reducers_per_node * (fetch_s + cpu_s + write_s)
    };

    if reduce_phase_s > 0.0 {
        timeline.record(
            "shuffle+reduce",
            map_phase_end,
            map_phase_end + SimDuration::from_secs_f64(reduce_phase_s),
            shuffle_bytes,
        );
    }

    let network_traffic_bytes = remote_input_bytes + degraded_read_bytes + shuffle_bytes;
    Ok(JobMetrics {
        job: job.name().to_string(),
        code: placement.code_name().to_string(),
        job_time_s: map_phase_end.as_secs_f64() + reduce_phase_s,
        map_phase_s: map_phase_end.as_secs_f64(),
        reduce_phase_s,
        network_traffic_bytes,
        remote_input_bytes,
        degraded_read_bytes,
        shuffle_bytes,
        map_tasks: job.map_tasks().len(),
        local_map_tasks,
        degraded_reads,
        timeline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;
    use crate::scheduler::{DelayScheduler, SchedulerKind};
    use drc_cluster::{ClusterSpec, PlacementPolicy};
    use drc_codes::CodeKind;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run(
        kind: CodeKind,
        spec: ClusterSpec,
        tasks: usize,
        down: &[usize],
        seed: u64,
    ) -> JobMetrics {
        let code = kind.build().unwrap();
        let mut cluster = Cluster::new(spec);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let stripes = tasks.div_ceil(code.data_blocks());
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            stripes,
            PlacementPolicy::Random,
            &mut rng,
        )
        .unwrap();
        for &n in down {
            cluster.set_down(NodeId(n));
        }
        let blocks: Vec<_> = placement.data_blocks().into_iter().take(tasks).collect();
        let job = JobSpec::new("terasort", blocks).with_reduce_tasks(8);
        run_job(
            &job,
            code.as_ref(),
            &placement,
            &cluster,
            &DelayScheduler::default(),
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn healthy_cluster_metrics_are_consistent() {
        let m = run(
            CodeKind::Pentagon,
            ClusterSpec::simulation_25(2),
            50,
            &[],
            3,
        );
        assert_eq!(m.map_tasks, 50);
        assert_eq!(m.degraded_reads, 0);
        assert!(m.job_time_s > 0.0);
        assert!(m.map_phase_s > 0.0 && m.reduce_phase_s > 0.0);
        assert!((m.job_time_s - (m.map_phase_s + m.reduce_phase_s)).abs() < 1e-9);
        assert!(m.data_locality_percent() > 0.0 && m.data_locality_percent() <= 100.0);
        // Remote input bytes match the number of non-local tasks.
        let expected_remote = (m.map_tasks - m.local_map_tasks) as u64 * 128 * 1024 * 1024;
        assert_eq!(m.remote_input_bytes, expected_remote);
        assert_eq!(
            m.network_traffic_bytes,
            m.remote_input_bytes + m.degraded_read_bytes + m.shuffle_bytes
        );
        assert!(m.network_traffic_gb() > 0.0);
    }

    #[test]
    fn lost_locality_costs_traffic_and_time() {
        // The pentagon loses locality relative to 2-rep at full load on a
        // 2-slot cluster (Fig. 4), which must show up as extra network
        // traffic and a longer map phase.
        let mut pent_traffic = 0.0;
        let mut rep_traffic = 0.0;
        let mut pent_time = 0.0;
        let mut rep_time = 0.0;
        let mut pent_local = 0.0;
        let mut rep_local = 0.0;
        for seed in 0..5 {
            let pent = run(
                CodeKind::Pentagon,
                ClusterSpec::simulation_25(2),
                50,
                &[],
                seed,
            );
            let rep = run(
                CodeKind::TWO_REP,
                ClusterSpec::simulation_25(2),
                50,
                &[],
                seed,
            );
            pent_traffic += pent.network_traffic_gb();
            rep_traffic += rep.network_traffic_gb();
            pent_time += pent.job_time_s;
            rep_time += rep.job_time_s;
            pent_local += pent.data_locality_percent();
            rep_local += rep.data_locality_percent();
        }
        assert!(pent_local < rep_local);
        assert!(pent_traffic > rep_traffic);
        assert!(pent_time >= rep_time);
    }

    #[test]
    fn degraded_reads_happen_when_both_replicas_are_down() {
        // Force failures until some block loses every replica; pentagon
        // degraded reads then fetch 3 blocks each.
        let code = CodeKind::Pentagon.build().unwrap();
        let mut cluster = Cluster::new(ClusterSpec::simulation_25(4));
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            1,
            PlacementPolicy::Random,
            &mut rng,
        )
        .unwrap();
        // Take both hosts of data block 0 of stripe 0 down.
        let block = drc_cluster::GlobalBlockId {
            stripe: 0,
            block: 0,
        };
        for &n in placement.block_locations(block) {
            cluster.set_down(n);
        }
        let job = JobSpec::new("degraded", vec![block]);
        let metrics = run_job(
            &job,
            code.as_ref(),
            &placement,
            &cluster,
            &DelayScheduler::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(metrics.degraded_reads, 1);
        assert_eq!(metrics.degraded_read_bytes, 3 * 128 * 1024 * 1024);
        assert_eq!(metrics.local_map_tasks, 0);
    }

    #[test]
    fn unreadable_blocks_are_an_error() {
        let code = CodeKind::TWO_REP.build().unwrap();
        let mut cluster = Cluster::new(ClusterSpec::simulation_25(4));
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            1,
            PlacementPolicy::Random,
            &mut rng,
        )
        .unwrap();
        let block = drc_cluster::GlobalBlockId {
            stripe: 0,
            block: 0,
        };
        for &n in placement.block_locations(block) {
            cluster.set_down(n);
        }
        let job = JobSpec::new("doomed", vec![block]);
        let err = run_job(
            &job,
            code.as_ref(),
            &placement,
            &cluster,
            &DelayScheduler::default(),
            &mut rng,
        );
        assert!(matches!(err, Err(MapReduceError::UnreadableBlock { .. })));
    }

    #[test]
    fn unknown_blocks_are_rejected() {
        let code = CodeKind::TWO_REP.build().unwrap();
        let cluster = Cluster::new(ClusterSpec::simulation_25(4));
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            1,
            PlacementPolicy::Random,
            &mut rng,
        )
        .unwrap();
        let job = JobSpec::new(
            "bogus",
            vec![drc_cluster::GlobalBlockId {
                stripe: 7,
                block: 0,
            }],
        );
        assert!(matches!(
            run_job(
                &job,
                code.as_ref(),
                &placement,
                &cluster,
                &DelayScheduler::default(),
                &mut rng
            ),
            Err(MapReduceError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn overload_executes_in_multiple_waves() {
        // 150% load on setup 1: 75 tasks over 50 slots -> two waves, roughly
        // double the map-phase time of a 50%-load run.
        let half = run(CodeKind::TWO_REP, ClusterSpec::setup1(), 25, &[], 11);
        let over = run(CodeKind::TWO_REP, ClusterSpec::setup1(), 75, &[], 11);
        assert_eq!(over.map_tasks, 75);
        assert!(over.map_phase_s > 1.5 * half.map_phase_s);
    }

    #[test]
    fn more_reduce_tasks_spread_the_reduce_phase() {
        let code = CodeKind::TWO_REP.build().unwrap();
        let cluster = Cluster::new(ClusterSpec::setup2());
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            18,
            PlacementPolicy::Random,
            &mut rng,
        )
        .unwrap();
        let blocks = placement.data_blocks();
        let narrow = JobSpec::new("sort", blocks.clone()).with_reduce_tasks(1);
        let wide = JobSpec::new("sort", blocks).with_reduce_tasks(18);
        let m_narrow = run_job(
            &narrow,
            code.as_ref(),
            &placement,
            &cluster,
            &DelayScheduler::default(),
            &mut rng,
        )
        .unwrap();
        let m_wide = run_job(
            &wide,
            code.as_ref(),
            &placement,
            &cluster,
            &DelayScheduler::default(),
            &mut rng,
        )
        .unwrap();
        assert!(m_wide.reduce_phase_s < m_narrow.reduce_phase_s);
    }

    #[test]
    fn timeline_records_waves_and_reduce_phase() {
        // 150% load on setup 1 needs at least two scheduling waves.
        let m = run(CodeKind::TWO_REP, ClusterSpec::setup1(), 75, &[], 11);
        let waves = m
            .timeline
            .phases
            .iter()
            .filter(|p| p.label.starts_with("map:wave"))
            .count();
        assert!(waves >= 2, "overload must produce multiple wave phases");
        assert!(m
            .timeline
            .phases
            .iter()
            .any(|p| p.label == "shuffle+reduce"));
        // The timeline's end is the job's virtual completion.
        assert!((m.timeline.end().as_secs_f64() - m.job_time_s).abs() < 1e-6);
        // Wave network bytes sum to the job's input traffic.
        let wave_bytes: u64 = m.timeline.with_prefix("map:wave").map(|p| p.bytes).sum();
        assert_eq!(wave_bytes, m.remote_input_bytes + m.degraded_read_bytes);
    }

    #[test]
    fn degraded_read_spans_appear_on_the_timeline() {
        let code = CodeKind::Pentagon.build().unwrap();
        let mut cluster = Cluster::new(ClusterSpec::simulation_25(4));
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            1,
            PlacementPolicy::Random,
            &mut rng,
        )
        .unwrap();
        let block = drc_cluster::GlobalBlockId {
            stripe: 0,
            block: 0,
        };
        for &n in placement.block_locations(block) {
            cluster.set_down(n);
        }
        let job = JobSpec::new("degraded", vec![block]);
        let metrics = run_job(
            &job,
            code.as_ref(),
            &placement,
            &cluster,
            &DelayScheduler::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(
            metrics.timeline.bytes_with_prefix("degraded-read:"),
            metrics.degraded_read_bytes
        );
        assert!(metrics.timeline.overlap("map:", "degraded-read:").0 > 0);
    }

    #[test]
    fn scheduler_kind_integration() {
        // The engine works with every scheduler kind.
        let code = CodeKind::Heptagon.build().unwrap();
        let cluster = Cluster::new(ClusterSpec::simulation_25(4));
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            5,
            PlacementPolicy::Random,
            &mut rng,
        )
        .unwrap();
        let job = JobSpec::new("sweep", placement.data_blocks());
        for kind in SchedulerKind::all() {
            let scheduler = kind.build();
            let m = run_job(
                &job,
                code.as_ref(),
                &placement,
                &cluster,
                scheduler.as_ref(),
                &mut rng,
            )
            .unwrap();
            assert_eq!(m.map_tasks, 100);
            assert!(m.job_time_s.is_finite());
        }
    }
}
