//! A discrete-event MapReduce execution engine.
//!
//! This is the substitute for the paper's physical Hadoop clusters (§4): it
//! executes a [`JobSpec`] against a block placement on a cluster, using one of
//! the task schedulers, and reports the three quantities Fig. 4 and Fig. 5
//! plot — job execution time, network traffic and data locality — plus
//! degraded-read statistics for the failure experiments.
//!
//! The model is deliberately simple but mechanistic: map tasks read their
//! block from local disk or over the network (or rebuild it with a degraded
//! read when every replica is unreachable), spend CPU time proportional to
//! the input, and occupy a map slot for their duration; the shuffle moves the
//! map output across the network to the reducers; reducers then merge and
//! write their output. Absolute times depend on the bandwidth constants in
//! [`ClusterSpec`], but the *differences between codes* come only from
//! locality and degraded reads — exactly the mechanism the paper identifies.
//!
//! # Event model
//!
//! Every phase of the job is discrete events on the `drc_sim` substrate —
//! there is no closed-form time left in the engine:
//!
//! * **Map waves** — map slots are unit-capacity [`Resource`]s; every task
//!   duration the schedulers' placements induce is consumed as a
//!   virtual-time reservation, and each wave's remote-read bytes queue
//!   through the shared LAN fabric.
//! * **Shuffle** — each reducer is placed round-robin over the up nodes and
//!   issues one fetch event per *source node*: a [`Transfer`] that acquires
//!   the source node's NIC, the destination node's NIC and the shared LAN
//!   fabric from the [`ClusterNet`], holding all three for the bottleneck
//!   service time. The share produced on the reducer's own node never
//!   touches the network. Per-link queueing delay is accumulated into
//!   [`JobMetrics::shuffle_contention`].
//! * **Reduce** — a reducer occupies one of its node's reduce-slot
//!   [`Resource`]s from fetch start through merge CPU and the output write,
//!   which reserves the node's *disk* in the same [`ClusterNet`].
//!
//! [`run_job`] executes against a private, idle [`ClusterNet`];
//! [`run_job_on`] executes against a **shared** one (e.g.
//! `DistributedFileSystem::cluster_net`), which is where the paper's
//! headline contention appears: a repair pass or a batch of degraded reads
//! issued in the same virtual window reserves the same NICs, disks and
//! fabric, so shuffle fetches queue behind reconstruction traffic and the
//! job visibly slows down (the `shuffle-contention` experiment).
//!
//! [`JobMetrics::timeline`] records the per-wave phases — `map:wave<i>`
//! (plus `degraded-read:wave<i>` spans), `shuffle:fetch` and
//! `reduce:wave<i>` — so contention between waves, reconstruction and
//! shuffle traffic is visible instead of being summed serially.
//!
//! # Byte accounting
//!
//! Byte totals are computed exactly (round-to-nearest, saturating at
//! `u64::MAX`, with non-finite ratios rejected as configuration errors) and
//! are **independent of the event model**: the events decide *when* traffic
//! moves, never *how much*. An event-driven run reports the same
//! `shuffle_bytes` / `network_traffic_bytes` as the closed-form accounting,
//! whatever the substrate's congestion state.

use std::collections::{BTreeMap, BTreeSet};

use rand::RngCore;
use serde::{Deserialize, Serialize};

use drc_cluster::{Cluster, FailureEventKind, FailureTrace, NodeId, PlacementMap};
use drc_codes::ErasureCode;
use drc_sim::{ClusterNet, Resource, SimDuration, SimTime, Timeline, Transfer};

use crate::assignment::Assignment;
use crate::graph::TaskNodeGraph;
use crate::job::{JobSpec, MapTask};
use crate::scheduler::TaskScheduler;
use crate::MapReduceError;

/// Per-link queueing delay accumulated by the shuffle's fetch events.
///
/// Each fetch is a [`Transfer`] over the source NIC, destination NIC and the
/// shared LAN fabric; whenever one of those links is still busy with earlier
/// traffic (other fetches, or repair / degraded-read transfers sharing the
/// [`ClusterNet`]), the wait is attributed here. Waits on different links can
/// cover the same virtual-time window — each figure answers "how long would
/// this link alone have delayed the fetches".
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LinkContention {
    /// Seconds fetches waited for busy source (map-side) NICs.
    pub source_nic_wait_s: f64,
    /// Seconds fetches waited for busy destination (reduce-side) NICs.
    pub dest_nic_wait_s: f64,
    /// Seconds the saturated shared LAN fabric added to fetch completions
    /// beyond the bottleneck NIC's service time.
    pub fabric_wait_s: f64,
}

impl LinkContention {
    /// Total attributed wait across all links.
    pub fn total_s(&self) -> f64 {
        self.source_nic_wait_s + self.dest_nic_wait_s + self.fabric_wait_s
    }
}

/// Where and when a job executes: the resource substrate its traffic
/// reserves and the virtual instant it is issued.
#[derive(Debug, Clone, Copy)]
pub struct JobSite<'a> {
    /// The cluster resource model (per-node NICs and disks plus the shared
    /// LAN fabric). Pass a file system's `cluster_net()` to make the job
    /// contend with storage-layer traffic issued in the same window.
    pub net: &'a ClusterNet,
    /// The virtual instant the job starts (reservations never begin
    /// earlier).
    pub start: SimTime,
}

/// The failure model a traced job execution consumes: *when* nodes fail or
/// recover ([`FailureTrace`], absolute virtual instants on the same epoch as
/// the job's [`JobSite::start`]) and how long the NameNode takes to notice
/// ([`FailureModel::detection_timeout`]).
///
/// The engine interprets the trace's liveness events only (`NodeDown`,
/// `RackDown`, `NodeUp`); `Slowdown` events belong to the substrate and are
/// applied by whichever layer owns the [`ClusterNet`] (the file system's
/// failure engine), so a shared trace is never applied twice.
#[derive(Debug, Clone, Copy)]
pub struct FailureModel<'a> {
    /// The timed failure events, on the job's virtual epoch.
    pub trace: &'a FailureTrace,
    /// How long after a node fail-stops the scheduler learns about it. A
    /// failed attempt only resolves (and its task becomes re-schedulable)
    /// at the detection boundary — the mechanism that makes job slowdown
    /// detection-lag-dependent.
    pub detection_timeout: SimDuration,
}

impl<'a> FailureModel<'a> {
    /// A model over `trace` with the given detection timeout.
    pub fn new(trace: &'a FailureTrace, detection_timeout: SimDuration) -> Self {
        FailureModel {
            trace,
            detection_timeout,
        }
    }
}

/// Measurements from one simulated job execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobMetrics {
    /// Name of the job.
    pub job: String,
    /// Name of the code whose placement was used.
    pub code: String,
    /// Total job execution time in seconds (map phase + reduce phase).
    pub job_time_s: f64,
    /// Duration of the map phase in seconds.
    pub map_phase_s: f64,
    /// Duration of the shuffle + reduce phase in seconds.
    pub reduce_phase_s: f64,
    /// Total bytes that crossed the network during the job.
    pub network_traffic_bytes: u64,
    /// Bytes of map input fetched remotely (replica reads from other nodes).
    pub remote_input_bytes: u64,
    /// Bytes fetched to serve degraded reads (reconstruction traffic).
    pub degraded_read_bytes: u64,
    /// Bytes of map output moved across the network during the shuffle.
    pub shuffle_bytes: u64,
    /// Number of map tasks.
    pub map_tasks: usize,
    /// Number of map tasks that ran on a node holding their block.
    pub local_map_tasks: usize,
    /// Number of map tasks that needed a degraded read (no live replica).
    pub degraded_reads: usize,
    /// Map-task attempts lost to mid-job node failures and executed again
    /// on surviving nodes (zero unless the job ran under a
    /// [`FailureModel`] whose trace fired during the map phase).
    pub tasks_reexecuted: usize,
    /// Per-phase virtual-time record: one `map:wave<i>` phase per scheduling
    /// wave (plus a `degraded-read:wave<i>` span when reconstruction traffic
    /// was in flight), a `shuffle:fetch` phase covering the reducer fetch
    /// events, and one `reduce:wave<i>` phase per reduce-slot wave.
    pub timeline: Timeline,
    /// Per-link seconds the shuffle's fetch events spent queueing behind
    /// other traffic on the NICs and the shared fabric.
    pub shuffle_contention: LinkContention,
}

impl JobMetrics {
    /// Data locality in percent (the paper's metric).
    pub fn data_locality_percent(&self) -> f64 {
        if self.map_tasks == 0 {
            return 100.0;
        }
        self.local_map_tasks as f64 / self.map_tasks as f64 * 100.0
    }

    /// Network traffic in GiB (the unit of Fig. 4 and Fig. 5).
    pub fn network_traffic_gb(&self) -> f64 {
        self.network_traffic_bytes as f64 / (1024.0 * 1024.0 * 1024.0)
    }
}

/// Scales a byte count by a ratio, rounding to the nearest byte and
/// saturating at `u64::MAX`.
///
/// # Errors
///
/// Returns [`MapReduceError::InvalidConfig`] if the ratio is NaN or infinite
/// or the product is not finite — a silent `as u64` cast of those values
/// would turn the byte count into 0 (pre-1.45 UB, now saturation of NaN to
/// 0), wiping `shuffle_bytes` from the traffic totals without a trace.
fn scale_bytes(bytes: u64, ratio: f64, what: &str) -> Result<u64, MapReduceError> {
    if !ratio.is_finite() || ratio < 0.0 {
        return Err(MapReduceError::InvalidConfig {
            reason: format!("{what}: scaling ratio must be finite and non-negative, got {ratio}"),
        });
    }
    let scaled = bytes as f64 * ratio;
    if scaled >= u64::MAX as f64 {
        return Ok(u64::MAX);
    }
    Ok(scaled.round() as u64)
}

/// Runs `job` on `cluster` against `placement`, scheduling map tasks with
/// `scheduler`. `code` must be the code the placement was built with; it is
/// used to plan degraded reads when every replica of a block is unreachable.
///
/// The job executes on a private, idle [`ClusterNet`] built from the
/// cluster's spec, starting at the virtual epoch; use [`run_job_on`] to
/// execute on a shared substrate instead.
///
/// # Errors
///
/// Returns [`MapReduceError::InvalidConfig`] if a task references a block that
/// is not in the placement, or [`MapReduceError::UnreadableBlock`] if a block
/// cannot be served at all (more failures than the code tolerates).
pub fn run_job(
    job: &JobSpec,
    code: &dyn ErasureCode,
    placement: &PlacementMap,
    cluster: &Cluster,
    scheduler: &dyn TaskScheduler,
    rng: &mut dyn RngCore,
) -> Result<JobMetrics, MapReduceError> {
    let net = ClusterNet::new(cluster.spec());
    run_job_on(
        job,
        code,
        placement,
        cluster,
        scheduler,
        rng,
        JobSite {
            net: &net,
            start: SimTime::ZERO,
        },
    )
}

/// Runs `job` like [`run_job`], but issues every event against the
/// [`ClusterNet`] and start instant in `site`.
///
/// This is the entry point for contention studies: hand in a file system's
/// shared net and a repair pass or degraded reads issued in the same virtual
/// window will compete with the job's map-wave traffic and shuffle fetches
/// for the same NICs, disks and LAN fabric.
///
/// # Errors
///
/// As [`run_job`].
pub fn run_job_on(
    job: &JobSpec,
    code: &dyn ErasureCode,
    placement: &PlacementMap,
    cluster: &Cluster,
    scheduler: &dyn TaskScheduler,
    rng: &mut dyn RngCore,
    site: JobSite<'_>,
) -> Result<JobMetrics, MapReduceError> {
    let empty = FailureTrace::new();
    run_job_traced(
        job,
        code,
        placement,
        cluster,
        scheduler,
        rng,
        site,
        FailureModel::new(&empty, SimDuration::ZERO),
    )
}

/// The liveness the engine tracks while consuming a [`FailureModel`]:
/// which nodes have *actually* fail-stopped (and when), and which of those
/// the scheduler has *detected* (and therefore stopped scheduling onto).
/// Between a fail-stop and its detection boundary the two views disagree —
/// that window is exactly where attempts are lost and re-executed.
struct FailureState {
    /// Liveness events expanded from the trace (`true` = down), sorted.
    events: Vec<(SimTime, bool, NodeId)>,
    /// Index of the first event not yet applied.
    cursor: usize,
    /// Fail-stopped nodes and their failure instants.
    actual_down: BTreeMap<NodeId, SimTime>,
    /// Fail-stopped nodes whose detection boundary has passed.
    detected: BTreeSet<NodeId>,
    /// Every node that ever fail-stopped during the job: its disk was
    /// wiped, so its replicas stay unreadable even after a `NodeUp`
    /// re-admits the node for task execution (the engine does not model
    /// the storage layer's repairs restoring them mid-job).
    wiped: BTreeSet<NodeId>,
    /// Detection lag: boundary = failure instant + timeout.
    timeout: SimDuration,
}

impl FailureState {
    fn new(model: &FailureModel<'_>, cluster: &Cluster) -> Self {
        let mut events: Vec<(SimTime, bool, NodeId)> = Vec::new();
        for ev in model.trace.events() {
            let at = SimTime(ev.at_ns);
            match ev.kind {
                FailureEventKind::NodeDown { node } => events.push((at, true, node)),
                FailureEventKind::RackDown { rack } => {
                    for node in cluster.nodes_in_rack(rack) {
                        events.push((at, true, node));
                    }
                }
                FailureEventKind::NodeUp { node } => events.push((at, false, node)),
                // Substrate-level: the layer owning the ClusterNet applies
                // slowdowns; the engine only consumes liveness.
                FailureEventKind::Slowdown { .. } => {}
            }
        }
        events.sort_by_key(|&(at, _, _)| at);
        FailureState {
            events,
            cursor: 0,
            actual_down: BTreeMap::new(),
            detected: BTreeSet::new(),
            wiped: BTreeSet::new(),
            timeout: model.timeout(),
        }
    }

    /// Advances the model to `t`, interleaving trace events and detection
    /// boundaries **in time order** — the same strict replay the storage
    /// engine's event queue does, so detection never depends on where the
    /// job's wave boundaries happen to fall. A recovery at or before a
    /// node's boundary cancels its detection; a recovery after it does not
    /// (the node was already declared dead). Crossed boundaries mark the
    /// scheduler's `view` down and put each non-zero blind window on the
    /// timeline as a `detection-lag:` phase (half-open
    /// `[failure, boundary)`, zero bytes).
    fn advance(&mut self, t: SimTime, view: &mut Cluster, timeline: &mut Timeline) {
        loop {
            let next_event = (self.cursor < self.events.len())
                .then(|| self.events[self.cursor].0)
                .filter(|&at| at <= t);
            let next_boundary = self
                .actual_down
                .iter()
                .filter(|(node, _)| !self.detected.contains(node))
                .map(|(&node, &down_at)| (down_at + self.timeout, node))
                .min()
                .filter(|&(boundary, _)| boundary <= t);
            match (next_event, next_boundary) {
                // Same-instant ties go to the trace event, matching the
                // storage engine's FIFO queue: a node restored *at* its
                // boundary is serving again at that instant (half-open
                // outage) and is never declared dead.
                (Some(event_at), Some((boundary, node))) if boundary < event_at => {
                    self.cross_boundary(node, boundary, view, timeline);
                }
                (Some(_), _) => self.apply_next_event(view),
                (None, Some((boundary, node))) => {
                    self.cross_boundary(node, boundary, view, timeline);
                }
                (None, None) => break,
            }
        }
    }

    /// Applies the next trace event to the actual-liveness map.
    fn apply_next_event(&mut self, view: &mut Cluster) {
        let (at, down, node) = self.events[self.cursor];
        self.cursor += 1;
        if down {
            if view.is_up(node) && !self.actual_down.contains_key(&node) {
                self.actual_down.insert(node, at);
                self.wiped.insert(node);
            }
        } else {
            self.actual_down.remove(&node);
            self.detected.remove(&node);
            view.set_up(node);
        }
    }

    /// Crosses one node's detection boundary: the scheduler finally sees it
    /// as dead.
    fn cross_boundary(
        &mut self,
        node: NodeId,
        boundary: SimTime,
        view: &mut Cluster,
        timeline: &mut Timeline,
    ) {
        let down_at = self.actual_down[&node];
        self.detected.insert(node);
        view.set_down(node);
        if boundary > down_at {
            timeline.record(drc_sim::detection_lag_label(node.0), down_at, boundary, 0);
        }
    }

    /// Returns `true` if `node` can serve a replica read right now: it is
    /// up in the scheduler's view, has not silently fail-stopped, and was
    /// never wiped by an earlier fail-stop (a `NodeUp` re-admits the node
    /// for task execution, but it comes back with an empty disk).
    fn replica_alive(&self, node: NodeId, view: &Cluster) -> bool {
        view.is_up(node) && !self.wiped.contains(&node)
    }

    /// When the scheduler gives up on an attempt lost to `node`'s fail-stop
    /// at `fail_at`: the detection boundary — or earlier, if the node
    /// rejoins first (a rejoining node immediately reports the attempt
    /// gone, so a recovery that cancels detection never stretches the job
    /// by a blind window that ends in nothing).
    fn attempt_resolution(&self, node: NodeId, fail_at: SimTime) -> SimTime {
        let boundary = fail_at + self.timeout;
        self.events[self.cursor..]
            .iter()
            .find(|&&(at, down, n)| !down && n == node && at >= fail_at)
            .map(|&(at, _, _)| at.min(boundary))
            .unwrap_or(boundary)
    }

    /// The instant `node` fail-stops, if an attempt in the window ending at
    /// `end` would be lost to it: either the node is already silently down
    /// (its past failure instant is returned), or the first not-yet-applied
    /// down event for it falls before `end`.
    fn first_failure_before(&self, node: NodeId, end: SimTime) -> Option<SimTime> {
        if let Some(&down_at) = self.actual_down.get(&node) {
            return Some(down_at);
        }
        self.events[self.cursor..]
            .iter()
            .find(|&&(at, down, n)| down && n == node && at < end)
            .map(|&(at, _, _)| at)
    }
}

impl FailureModel<'_> {
    fn timeout(&self) -> SimDuration {
        self.detection_timeout
    }
}

/// Runs `job` like [`run_job_on`], additionally consuming a timed failure
/// model *mid-job*:
///
/// * a node that fail-stops takes every map attempt running (or scheduled)
///   on it with it — the attempt resolves at the node's **detection
///   boundary** (failure instant + [`FailureModel::detection_timeout`]) and
///   the task re-executes on a surviving node in a later wave
///   ([`JobMetrics::tasks_reexecuted`] counts the lost attempts),
/// * during the blind window the scheduler keeps scheduling onto the dead
///   node (its view is stale) and reads treat the node's replicas as
///   unreachable: reads issued after the failure go degraded exactly as if
///   the replica set had shrunk,
/// * each non-zero blind window appears on [`JobMetrics::timeline`] as a
///   `detection-lag:node<N>` phase (half-open `[failure, boundary)`),
/// * `NodeUp` events re-admit nodes (for scheduling and reads) from their
///   instant on; `Slowdown` events are ignored here — they belong to the
///   layer that owns the shared [`ClusterNet`].
///
/// An empty trace makes this byte- and time-identical to [`run_job_on`]
/// (the differential tests lock that).
///
/// # Errors
///
/// As [`run_job`], plus [`MapReduceError::UnreadableBlock`] when failures
/// push a block past its code's tolerance.
#[allow(clippy::too_many_arguments)]
pub fn run_job_traced(
    job: &JobSpec,
    code: &dyn ErasureCode,
    placement: &PlacementMap,
    cluster: &Cluster,
    scheduler: &dyn TaskScheduler,
    rng: &mut dyn RngCore,
    site: JobSite<'_>,
    failures: FailureModel<'_>,
) -> Result<JobMetrics, MapReduceError> {
    let spec = cluster.spec();
    let block_mb = spec.block_size_mb as f64;
    let block_bytes = spec.block_size_bytes();

    for task in job.map_tasks() {
        if let Err(e) = placement.locations(task.block) {
            return Err(MapReduceError::InvalidConfig {
                reason: format!("task block {:?} is not in the placement: {e}", task.block),
            });
        }
    }

    // ---- Map phase -------------------------------------------------------
    let mut pending: Vec<MapTask> = job.map_tasks().to_vec();
    let slots = spec.map_slots_per_node;
    // Map slots as unit-capacity virtual-time resources, one per slot: a
    // task's duration is *consumed* as a reservation, so slot contention and
    // wave pipelining fall out of the substrate instead of hand-rolled
    // availability arrays. Populated lazily so nodes revived by `NodeUp`
    // events mid-job get slots too.
    let mut node_slots: BTreeMap<NodeId, Vec<Resource>> = BTreeMap::new();
    // The scheduler's view of the cluster: it learns about fail-stops only
    // at their detection boundaries, while `failure_state` tracks the truth.
    let mut view = cluster.clone();
    let mut failure_state = FailureState::new(&failures, cluster);
    let mut tasks_reexecuted = 0usize;
    // The shared LAN fabric of the execution site: aggregate remote traffic
    // queues through it at cluster-wide bandwidth, behind whatever other
    // traffic (repairs, degraded reads) already reserved it.
    let net = site.net;
    let lan = net.fabric();
    let mut timeline = Timeline::new();
    let mut wave_start = site.start;
    let mut map_phase_end = site.start;
    let mut wave_index = 0usize;

    let mut remote_input_bytes = 0u64;
    let mut degraded_read_bytes = 0u64;
    let mut local_map_tasks = 0usize;
    let mut degraded_reads = 0usize;

    while !pending.is_empty() {
        // Everything that happened up to this wave's start is now in force;
        // boundaries crossed mean the scheduler finally sees those nodes as
        // dead.
        failure_state.advance(wave_start, &mut view, &mut timeline);
        let graph = TaskNodeGraph::build(&pending, placement, &view);
        let capacities: BTreeMap<NodeId, usize> =
            graph.nodes().iter().map(|&n| (n, slots)).collect();
        let assignment: Assignment = scheduler.assign(&graph, &capacities, rng);
        if assignment.is_empty() {
            return Err(MapReduceError::InvalidConfig {
                reason: "scheduler made no progress (no capacity available)".to_string(),
            });
        }
        // Tasks whose attempt completes this wave; failed attempts stay
        // pending and re-execute after their node's detection boundary.
        let mut completed_ids: BTreeSet<usize> = BTreeSet::new();
        let mut wave_network_bytes = 0u64;
        let mut wave_degraded_bytes = 0u64;
        let mut wave_end = wave_start;

        for a in assignment.iter() {
            let task = pending[a.task.0];
            // An attempt on a node that already fail-stopped (silently —
            // detected nodes are out of the graph) is lost outright: it
            // resolves when the scheduler gives up on the node and the task
            // becomes re-schedulable.
            if let Some(fail_at) = failure_state.first_failure_before(a.node, wave_start) {
                let resolve = failure_state
                    .attempt_resolution(a.node, fail_at)
                    .max(wave_start);
                wave_end = wave_end.max(resolve);
                tasks_reexecuted += 1;
                continue;
            }
            // Read cost: replicas on *actually* down nodes (detected or
            // not) cannot serve, so reads issued after a failure go
            // degraded even inside the blind window. A "local" assignment
            // is only truly local if the node's replica survived — a
            // wiped-then-revived node is back for task execution, but the
            // scheduler's placement edge points at data its fail-stop
            // destroyed, so the read falls through to the remote/degraded
            // path like any other dead replica.
            let local = a.local && failure_state.replica_alive(a.node, &view);
            let (read_s, remote_bytes, degraded_bytes, degraded) = if local {
                (block_mb / spec.disk_bandwidth_mbps, 0u64, 0u64, false)
            } else {
                // Which stripe-local nodes are down for this block's stripe?
                let stripe_nodes = placement.stripe_hosts(task.block.stripe())?;
                let down_local: BTreeSet<usize> = stripe_nodes
                    .iter()
                    .enumerate()
                    .filter(|(_, n)| !failure_state.replica_alive(**n, &view))
                    .map(|(i, _)| i)
                    .collect();
                let replicas_alive = placement
                    .locations(task.block)?
                    .iter()
                    .any(|n| failure_state.replica_alive(*n, &view));
                if replicas_alive {
                    // Plain remote read of one block.
                    (
                        block_mb / spec.network_bandwidth_mbps,
                        block_bytes,
                        0u64,
                        false,
                    )
                } else {
                    // Degraded read: rebuild from the code's plan.
                    let plan = code
                        .degraded_read_plan(task.block.block(), &down_local)
                        .map_err(|source| MapReduceError::UnreadableBlock {
                            block: task.block,
                            source,
                        })?;
                    let bytes = plan.network_blocks as u64 * block_bytes;
                    (
                        plan.network_blocks as f64 * block_mb / spec.network_bandwidth_mbps,
                        0u64,
                        bytes,
                        true,
                    )
                }
            };

            let run_s = job.task_overhead_s() + read_s + block_mb * job.map_cpu_s_per_mb();
            // Consume the task's duration on the earliest-free slot of the
            // assigned node.
            let slot_times = node_slots
                .entry(a.node)
                .or_insert_with(|| (0..slots).map(|_| Resource::new(0.0)).collect());
            let slot = slot_times
                .iter()
                .min_by_key(|s| s.next_free())
                .ok_or_else(|| MapReduceError::InvalidConfig {
                    reason: "map_slots_per_node must be at least 1".to_string(),
                })?;
            let res = slot.reserve_for(wave_start, SimDuration::from_secs_f64(run_s));

            // A fail-stop inside the attempt's window kills it mid-run: the
            // slot time is burnt, nothing is read or produced, and the task
            // resolves (for rescheduling) once the scheduler gives up on
            // the node.
            if let Some(fail_at) = failure_state.first_failure_before(a.node, res.end) {
                let resolve = failure_state
                    .attempt_resolution(a.node, fail_at)
                    .max(wave_start);
                wave_end = wave_end.max(resolve);
                tasks_reexecuted += 1;
                continue;
            }

            if local {
                local_map_tasks += 1;
            }
            if degraded {
                degraded_reads += 1;
            }
            remote_input_bytes += remote_bytes;
            degraded_read_bytes += degraded_bytes;
            wave_network_bytes += remote_bytes + degraded_bytes;
            wave_degraded_bytes += degraded_bytes;
            completed_ids.insert(a.task.0);
            wave_end = wave_end.max(res.end);
        }
        // The cluster's LAN is shared: if the wave's remote reads exceed what
        // the aggregate network can move while the slots are busy, the map
        // phase is network-bound and stretches accordingly. This is the
        // mechanism behind the paper's observation that lost locality costs
        // job time, not just traffic. A fully-local wave reserves nothing,
        // so it cannot queue behind unrelated fabric traffic.
        if wave_network_bytes > 0 {
            let lan_res = lan.reserve_bytes(wave_start, wave_network_bytes);
            wave_end = wave_end.max(lan_res.end);
        }
        timeline.record(
            format!("map:wave{wave_index}"),
            wave_start,
            wave_end,
            wave_network_bytes,
        );
        if wave_degraded_bytes > 0 {
            timeline.record(
                format!("degraded-read:wave{wave_index}"),
                wave_start,
                wave_end,
                wave_degraded_bytes,
            );
        }
        map_phase_end = map_phase_end.max(wave_end);
        wave_index += 1;

        // Remove completed tasks (lost attempts stay pending and re-execute
        // once their node's death is detected); renumber for the next wave.
        pending = pending
            .iter()
            .enumerate()
            .filter(|(i, _)| !completed_ids.contains(i))
            .map(|(_, t)| *t)
            .collect();
        for (i, t) in pending.iter_mut().enumerate() {
            t.id = crate::job::TaskId(i);
        }
        wave_start = map_phase_end;
    }
    // Failures that landed during the final wave (or detection boundaries
    // crossed by its end) are in force before reducers are placed.
    failure_state.advance(map_phase_end, &mut view, &mut timeline);

    // ---- Shuffle + reduce phase -------------------------------------------
    //
    // Byte accounting is closed-form and exact (the events below only decide
    // *when* the traffic moves): map output scales the input by the shuffle
    // ratio, and everything except the share produced on the reducer's own
    // node crosses the network.
    let input_bytes = job.map_tasks().len() as u64 * block_bytes;
    let map_output_bytes = scale_bytes(input_bytes, job.shuffle_ratio(), "map output")?;
    // Reducers land on the nodes the scheduler believes are up at the end
    // of the map phase (identical to the caller's cluster when no trace
    // event fired).
    let up = view.up_nodes();
    let n_up = up.len().max(1);
    let network_fraction = 1.0 - 1.0 / n_up as f64;
    let shuffle_bytes = scale_bytes(map_output_bytes, network_fraction, "shuffle volume")?;

    let mut shuffle_contention = LinkContention::default();
    let mut job_end = map_phase_end;
    if job.reduce_tasks() > 0 && map_output_bytes > 0 && !up.is_empty() {
        // Reducers are placed round-robin over the up nodes and occupy one
        // of their node's reduce slots from task start to output write.
        let slots_per_node = spec.reduce_slots_per_node.max(1);
        let reduce_slots: BTreeMap<NodeId, Vec<Resource>> = up
            .iter()
            .map(|&n| (n, (0..slots_per_node).map(|_| Resource::new(0.0)).collect()))
            .collect();
        let reducers = job.reduce_tasks();
        let per_reducer_bytes = map_output_bytes as f64 / reducers as f64;
        let per_reducer_mb = per_reducer_bytes / (1024.0 * 1024.0);
        // Map output is modeled as spread uniformly over the up nodes; each
        // reducer fetches one share per *source node* (its own node's share
        // is local and never touches the network). Per-fetch sizes only
        // shape event durations — the byte totals above stay exact.
        // drc-lint: allow(lossy-float-cast): explicitly rounded; operands are
        // finite by construction (reducers > 0 and n_up > 0 guarded above) and
        // the headline byte totals route through `scale_bytes` — these only
        // size per-fetch events.
        let per_source_bytes = (per_reducer_bytes / n_up as f64).round() as u64;
        let overhead = SimDuration::from_secs_f64(job.task_overhead_s());
        let merge_cpu = SimDuration::from_secs_f64(per_reducer_mb * job.reduce_cpu_s_per_mb());
        // drc-lint: allow(lossy-float-cast): explicitly rounded, reducers > 0
        // guarded above; sizes the reduce-output write event only.
        let write_bytes = per_reducer_bytes.round() as u64;
        let wave_size = (up.len() * slots_per_node).max(1);
        let mut fetch_span: Option<(SimTime, SimTime)> = None;
        let mut wave_spans: Vec<(SimTime, SimTime)> = Vec::new();

        for r in 0..reducers {
            let dest = up[r % up.len()];
            let slot = reduce_slots[&dest]
                .iter()
                .min_by_key(|s| s.next_free())
                .ok_or_else(|| MapReduceError::InvalidConfig {
                    reason: "reduce_slots_per_node must be at least 1".to_string(),
                })?;
            let task_start = map_phase_end.max(slot.next_free());
            let fetch_start = task_start + overhead;
            let mut fetch_done = fetch_start;
            // One fetch event per remote source: source NIC + destination
            // NIC + shared fabric, held together for the bottleneck time.
            for &src in &up {
                if src == dest || per_source_bytes == 0 {
                    continue;
                }
                let fetch = Transfer::new(net.fabric(), per_source_bytes)
                    .via(&net.node(src).nic)
                    .via(&net.node(dest).nic)
                    .issue(fetch_start);
                shuffle_contention.source_nic_wait_s += fetch.pipe_waits[0].as_secs_f64();
                shuffle_contention.dest_nic_wait_s += fetch.pipe_waits[1].as_secs_f64();
                shuffle_contention.fabric_wait_s += fetch.fabric_delay.as_secs_f64();
                fetch_done = fetch_done.max(fetch.reservation.end);
                fetch_span = Some(match fetch_span {
                    None => (fetch.reservation.start, fetch.reservation.end),
                    Some((s, e)) => (s.min(fetch.reservation.start), e.max(fetch.reservation.end)),
                });
            }
            // Merge CPU after the last fetch lands, then the output write on
            // the node's disk (shared with any storage-layer traffic).
            let write_res = net
                .node(dest)
                .disk
                .reserve_bytes(fetch_done + merge_cpu, write_bytes);
            slot.occupy_until(write_res.end);
            job_end = job_end.max(write_res.end);

            let wave = r / wave_size;
            match wave_spans.get_mut(wave) {
                Some((s, e)) => {
                    *s = (*s).min(task_start);
                    *e = (*e).max(write_res.end);
                }
                None => wave_spans.push((task_start, write_res.end)),
            }
        }

        match fetch_span {
            Some((s, e)) => timeline.record("shuffle:fetch", s, e, shuffle_bytes),
            // Per-source shares rounded to zero bytes (a degenerate, tiny
            // shuffle): keep the bytes on the record as an instant phase.
            None if shuffle_bytes > 0 => {
                timeline.record("shuffle:fetch", map_phase_end, map_phase_end, shuffle_bytes)
            }
            None => {}
        }
        for (wave, (s, e)) in wave_spans.iter().enumerate() {
            timeline.record(format!("reduce:wave{wave}"), *s, *e, 0);
        }
    }

    let reduce_phase_s = job_end.since(map_phase_end).as_secs_f64();
    let network_traffic_bytes = remote_input_bytes + degraded_read_bytes + shuffle_bytes;
    Ok(JobMetrics {
        job: job.name().to_string(),
        code: placement.code_name().to_string(),
        job_time_s: job_end.since(site.start).as_secs_f64(),
        map_phase_s: map_phase_end.since(site.start).as_secs_f64(),
        reduce_phase_s,
        network_traffic_bytes,
        remote_input_bytes,
        degraded_read_bytes,
        shuffle_bytes,
        map_tasks: job.map_tasks().len(),
        local_map_tasks,
        degraded_reads,
        tasks_reexecuted,
        timeline,
        shuffle_contention,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;
    use crate::scheduler::{DelayScheduler, SchedulerKind};
    use drc_cluster::{ClusterSpec, PlacementPolicy};
    use drc_codes::CodeKind;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run(
        kind: CodeKind,
        spec: ClusterSpec,
        tasks: usize,
        down: &[usize],
        seed: u64,
    ) -> JobMetrics {
        let code = kind.build().unwrap();
        let mut cluster = Cluster::new(spec);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let stripes = tasks.div_ceil(code.data_blocks());
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            stripes,
            PlacementPolicy::Random,
            &mut rng,
        )
        .unwrap();
        for &n in down {
            cluster.set_down(NodeId(n));
        }
        let blocks: Vec<_> = placement.data_blocks().into_iter().take(tasks).collect();
        let job = JobSpec::new("terasort", blocks).with_reduce_tasks(8);
        run_job(
            &job,
            code.as_ref(),
            &placement,
            &cluster,
            &DelayScheduler::default(),
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn healthy_cluster_metrics_are_consistent() {
        let m = run(
            CodeKind::Pentagon,
            ClusterSpec::simulation_25(2),
            50,
            &[],
            3,
        );
        assert_eq!(m.map_tasks, 50);
        assert_eq!(m.degraded_reads, 0);
        assert!(m.job_time_s > 0.0);
        assert!(m.map_phase_s > 0.0 && m.reduce_phase_s > 0.0);
        assert!((m.job_time_s - (m.map_phase_s + m.reduce_phase_s)).abs() < 1e-9);
        assert!(m.data_locality_percent() > 0.0 && m.data_locality_percent() <= 100.0);
        // Remote input bytes match the number of non-local tasks.
        let expected_remote = (m.map_tasks - m.local_map_tasks) as u64 * 128 * 1024 * 1024;
        assert_eq!(m.remote_input_bytes, expected_remote);
        assert_eq!(
            m.network_traffic_bytes,
            m.remote_input_bytes + m.degraded_read_bytes + m.shuffle_bytes
        );
        assert!(m.network_traffic_gb() > 0.0);
    }

    #[test]
    fn lost_locality_costs_traffic_and_time() {
        // The pentagon loses locality relative to 2-rep at full load on a
        // 2-slot cluster (Fig. 4), which must show up as extra network
        // traffic and a longer map phase.
        let mut pent_traffic = 0.0;
        let mut rep_traffic = 0.0;
        let mut pent_time = 0.0;
        let mut rep_time = 0.0;
        let mut pent_local = 0.0;
        let mut rep_local = 0.0;
        for seed in 0..5 {
            let pent = run(
                CodeKind::Pentagon,
                ClusterSpec::simulation_25(2),
                50,
                &[],
                seed,
            );
            let rep = run(
                CodeKind::TWO_REP,
                ClusterSpec::simulation_25(2),
                50,
                &[],
                seed,
            );
            pent_traffic += pent.network_traffic_gb();
            rep_traffic += rep.network_traffic_gb();
            pent_time += pent.job_time_s;
            rep_time += rep.job_time_s;
            pent_local += pent.data_locality_percent();
            rep_local += rep.data_locality_percent();
        }
        assert!(pent_local < rep_local);
        assert!(pent_traffic > rep_traffic);
        assert!(pent_time >= rep_time);
    }

    #[test]
    fn degraded_reads_happen_when_both_replicas_are_down() {
        // Force failures until some block loses every replica; pentagon
        // degraded reads then fetch 3 blocks each.
        let code = CodeKind::Pentagon.build().unwrap();
        let mut cluster = Cluster::new(ClusterSpec::simulation_25(4));
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            1,
            PlacementPolicy::Random,
            &mut rng,
        )
        .unwrap();
        // Take both hosts of data block 0 of stripe 0 down.
        let block = drc_cluster::GlobalBlockId::new(0, 0);
        for &n in &placement.locations(block).unwrap() {
            cluster.set_down(n);
        }
        let job = JobSpec::new("degraded", vec![block]);
        let metrics = run_job(
            &job,
            code.as_ref(),
            &placement,
            &cluster,
            &DelayScheduler::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(metrics.degraded_reads, 1);
        assert_eq!(metrics.degraded_read_bytes, 3 * 128 * 1024 * 1024);
        assert_eq!(metrics.local_map_tasks, 0);
    }

    #[test]
    fn unreadable_blocks_are_an_error() {
        let code = CodeKind::TWO_REP.build().unwrap();
        let mut cluster = Cluster::new(ClusterSpec::simulation_25(4));
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            1,
            PlacementPolicy::Random,
            &mut rng,
        )
        .unwrap();
        let block = drc_cluster::GlobalBlockId::new(0, 0);
        for &n in &placement.locations(block).unwrap() {
            cluster.set_down(n);
        }
        let job = JobSpec::new("doomed", vec![block]);
        let err = run_job(
            &job,
            code.as_ref(),
            &placement,
            &cluster,
            &DelayScheduler::default(),
            &mut rng,
        );
        assert!(matches!(err, Err(MapReduceError::UnreadableBlock { .. })));
    }

    #[test]
    fn unknown_blocks_are_rejected() {
        let code = CodeKind::TWO_REP.build().unwrap();
        let cluster = Cluster::new(ClusterSpec::simulation_25(4));
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            1,
            PlacementPolicy::Random,
            &mut rng,
        )
        .unwrap();
        let job = JobSpec::new("bogus", vec![drc_cluster::GlobalBlockId::new(7, 0)]);
        assert!(matches!(
            run_job(
                &job,
                code.as_ref(),
                &placement,
                &cluster,
                &DelayScheduler::default(),
                &mut rng
            ),
            Err(MapReduceError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn overload_executes_in_multiple_waves() {
        // 150% load on setup 1: 75 tasks over 50 slots -> two waves, roughly
        // double the map-phase time of a 50%-load run.
        let half = run(CodeKind::TWO_REP, ClusterSpec::setup1(), 25, &[], 11);
        let over = run(CodeKind::TWO_REP, ClusterSpec::setup1(), 75, &[], 11);
        assert_eq!(over.map_tasks, 75);
        assert!(over.map_phase_s > 1.5 * half.map_phase_s);
    }

    #[test]
    fn more_reduce_tasks_spread_the_reduce_phase() {
        let code = CodeKind::TWO_REP.build().unwrap();
        let cluster = Cluster::new(ClusterSpec::setup2());
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            18,
            PlacementPolicy::Random,
            &mut rng,
        )
        .unwrap();
        let blocks = placement.data_blocks();
        let narrow = JobSpec::new("sort", blocks.clone()).with_reduce_tasks(1);
        let wide = JobSpec::new("sort", blocks).with_reduce_tasks(18);
        let m_narrow = run_job(
            &narrow,
            code.as_ref(),
            &placement,
            &cluster,
            &DelayScheduler::default(),
            &mut rng,
        )
        .unwrap();
        let m_wide = run_job(
            &wide,
            code.as_ref(),
            &placement,
            &cluster,
            &DelayScheduler::default(),
            &mut rng,
        )
        .unwrap();
        assert!(m_wide.reduce_phase_s < m_narrow.reduce_phase_s);
    }

    #[test]
    fn timeline_records_waves_and_reduce_phase() {
        // 150% load on setup 1 needs at least two scheduling waves.
        let m = run(CodeKind::TWO_REP, ClusterSpec::setup1(), 75, &[], 11);
        let waves = m
            .timeline
            .phases
            .iter()
            .filter(|p| p.label.starts_with("map:wave"))
            .count();
        assert!(waves >= 2, "overload must produce multiple wave phases");
        // The shuffle's fetch events and the reduce waves are phases of
        // their own, and the fetch phase carries the shuffle bytes.
        assert_eq!(m.timeline.bytes_with_prefix("shuffle:"), m.shuffle_bytes);
        assert!(m.timeline.with_prefix("reduce:wave").count() >= 1);
        // Reducers fetch while earlier reducers still merge: the two phase
        // groups overlap.
        let fetch = m
            .timeline
            .with_prefix("shuffle:fetch")
            .next()
            .expect("a shuffle phase");
        assert!(fetch.start >= SimTime::ZERO && fetch.end > fetch.start);
        // The timeline's end is the job's virtual completion.
        assert!((m.timeline.end().as_secs_f64() - m.job_time_s).abs() < 1e-6);
        // Wave network bytes sum to the job's input traffic.
        let wave_bytes: u64 = m.timeline.with_prefix("map:wave").map(|p| p.bytes).sum();
        assert_eq!(wave_bytes, m.remote_input_bytes + m.degraded_read_bytes);
    }

    #[test]
    fn shuffle_contention_is_reported_and_busy_links_delay_the_job() {
        use drc_cluster::PlacementPolicy;
        let code = CodeKind::TWO_REP.build().unwrap();
        let cluster = Cluster::new(ClusterSpec::simulation_25(4));
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            10,
            PlacementPolicy::Random,
            &mut rng,
        )
        .unwrap();
        let job = JobSpec::new("contend", placement.data_blocks()).with_reduce_tasks(25);
        let run_at = |net: &drc_sim::ClusterNet, rng: &mut ChaCha8Rng| {
            run_job_on(
                &job,
                code.as_ref(),
                &placement,
                &cluster,
                &DelayScheduler::default(),
                rng,
                JobSite {
                    net,
                    start: SimTime::ZERO,
                },
            )
            .unwrap()
        };
        // Idle substrate: reducers still compete with *each other* for NICs,
        // so some contention is visible even without storage traffic.
        let mut rng_a = ChaCha8Rng::seed_from_u64(99);
        let idle_net = drc_sim::ClusterNet::new(cluster.spec());
        let idle = run_at(&idle_net, &mut rng_a);
        assert!(idle.shuffle_contention.total_s() >= 0.0);

        // Busy substrate: every NIC is reserved until well past the idle
        // job's completion — the shuffle must queue behind it, the job is
        // strictly delayed, and the waits are attributed to the NICs.
        let mut rng_b = ChaCha8Rng::seed_from_u64(99);
        let busy_net = drc_sim::ClusterNet::new(cluster.spec());
        let hold = SimTime::ZERO + SimDuration::from_secs_f64(2.0 * idle.job_time_s + 10.0);
        for n in cluster.up_nodes() {
            busy_net.node(n).nic.occupy_until(hold);
        }
        let busy = run_at(&busy_net, &mut rng_b);
        assert_eq!(busy.network_traffic_bytes, idle.network_traffic_bytes);
        assert!(busy.job_time_s > idle.job_time_s, "busy links must delay");
        assert!(
            busy.shuffle_contention.source_nic_wait_s > idle.shuffle_contention.source_nic_wait_s
        );
        assert!(busy.shuffle_contention.dest_nic_wait_s > idle.shuffle_contention.dest_nic_wait_s);
        // The map phase never touches NICs, so the whole delay is reduce-side.
        assert!((busy.map_phase_s - idle.map_phase_s).abs() < 1e-9);
        assert!(busy.reduce_phase_s > idle.reduce_phase_s);
    }

    #[test]
    fn t0_trace_with_zero_timeout_matches_the_static_failure_model() {
        use drc_cluster::FailureScenario;
        // Static path: the cluster starts with the victims down. Traced
        // path: a healthy cluster plus a t = 0 trace under a zero detection
        // timeout. The two must produce identical metrics, timeline
        // included.
        for kind in [CodeKind::Pentagon, CodeKind::Heptagon] {
            let code = kind.build().unwrap();
            let cluster = Cluster::new(ClusterSpec::simulation_25(4));
            let mut rng = ChaCha8Rng::seed_from_u64(31);
            let placement = PlacementMap::place(
                code.as_ref(),
                &cluster,
                3,
                PlacementPolicy::Random,
                &mut rng,
            )
            .unwrap();
            let victims: Vec<NodeId> = placement
                .locations(drc_cluster::GlobalBlockId::new(0, 0))
                .unwrap()
                .to_vec();
            let job = JobSpec::new("diff", placement.data_blocks()).with_reduce_tasks(6);

            let mut down_cluster = cluster.clone();
            for &v in &victims {
                down_cluster.set_down(v);
            }
            let mut rng_a = ChaCha8Rng::seed_from_u64(77);
            let net_a = drc_sim::ClusterNet::new(cluster.spec());
            let static_metrics = run_job_on(
                &job,
                code.as_ref(),
                &placement,
                &down_cluster,
                &DelayScheduler::default(),
                &mut rng_a,
                JobSite {
                    net: &net_a,
                    start: SimTime::ZERO,
                },
            )
            .unwrap();

            let trace = FailureScenario::nodes(victims).to_trace();
            let mut rng_b = ChaCha8Rng::seed_from_u64(77);
            let net_b = drc_sim::ClusterNet::new(cluster.spec());
            let traced_metrics = run_job_traced(
                &job,
                code.as_ref(),
                &placement,
                &cluster,
                &DelayScheduler::default(),
                &mut rng_b,
                JobSite {
                    net: &net_b,
                    start: SimTime::ZERO,
                },
                FailureModel::new(&trace, SimDuration::ZERO),
            )
            .unwrap();

            assert_eq!(static_metrics, traced_metrics, "{kind}");
            assert_eq!(traced_metrics.tasks_reexecuted, 0, "{kind}");
        }
    }

    #[test]
    fn mid_job_failure_reexecutes_tasks_and_slowdown_grows_with_detection_lag() {
        use drc_cluster::{FailureEvent, FailureEventKind, FailureTrace};
        let code = CodeKind::Pentagon.build().unwrap();
        let cluster = Cluster::new(ClusterSpec::simulation_25(2));
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            6,
            PlacementPolicy::Random,
            &mut rng,
        )
        .unwrap();
        let job = JobSpec::new("failing", placement.data_blocks()).with_reduce_tasks(8);
        let run = |trace: &FailureTrace, timeout_s: f64| {
            let net = drc_sim::ClusterNet::new(cluster.spec());
            let mut rng = ChaCha8Rng::seed_from_u64(43);
            run_job_traced(
                &job,
                code.as_ref(),
                &placement,
                &cluster,
                &DelayScheduler::default(),
                &mut rng,
                JobSite {
                    net: &net,
                    start: SimTime::ZERO,
                },
                FailureModel::new(trace, SimDuration::from_secs_f64(timeout_s)),
            )
            .unwrap()
        };

        let healthy = run(&FailureTrace::new(), 1.0);
        assert_eq!(healthy.tasks_reexecuted, 0);

        // Fail a node that certainly runs tasks (every node hosts blocks at
        // this load) a little into the map phase.
        let fail_at = healthy.map_phase_s * 0.25;
        let victim = NodeId(5);
        let trace = FailureTrace::from_events(vec![FailureEvent::at_secs(
            fail_at,
            FailureEventKind::NodeDown { node: victim },
        )]);
        let short = run(&trace, 0.5);
        let long = run(&trace, 5.0);
        for (label, m) in [("short", &short), ("long", &long)] {
            assert!(
                m.tasks_reexecuted >= 1,
                "{label}: tasks on the dead node must re-execute"
            );
            assert!(
                m.map_phase_s >= healthy.map_phase_s,
                "{label}: lost attempts never shorten the map phase"
            );
            let lag = m
                .timeline
                .with_prefix("detection-lag:")
                .next()
                .expect("a detection-lag phase");
            // The trace instant is rounded to the nearest nanosecond.
            assert!((lag.start.as_secs_f64() - fail_at).abs() < 1e-9);
            assert_eq!(lag.bytes, 0);
        }
        // The blind window is the mechanism: with a detection timeout long
        // enough that lost attempts resolve after the healthy wave ends,
        // the map phase (and with it the job) strictly stretches, and a
        // 10x longer timeout stretches it further.
        assert!(
            long.map_phase_s > healthy.map_phase_s,
            "the blind window must extend the map phase (healthy {:.3}s, long {:.3}s)",
            healthy.map_phase_s,
            long.map_phase_s
        );
        assert!(
            long.map_phase_s > short.map_phase_s && long.job_time_s > short.job_time_s,
            "detection lag must translate into job slowdown (short {:.3}s/{:.3}s, long {:.3}s/{:.3}s)",
            short.map_phase_s,
            short.job_time_s,
            long.map_phase_s,
            long.job_time_s
        );
        // Byte accounting stays exact: totals still partition.
        assert_eq!(
            short.network_traffic_bytes,
            short.remote_input_bytes + short.degraded_read_bytes + short.shuffle_bytes
        );
    }

    #[test]
    fn detection_depends_on_event_order_not_on_when_the_engine_looks() {
        use drc_cluster::{FailureEvent, FailureEventKind, FailureTrace};
        let cluster = Cluster::new(ClusterSpec::simulation_25(4));
        let node = NodeId(9);
        let t = |s: f64| SimTime::ZERO + SimDuration::from_secs_f64(s);
        let state_after = |up_at_s: f64, advance_to_s: f64| {
            let trace = FailureTrace::from_events(vec![
                FailureEvent::at_secs(1.0, FailureEventKind::NodeDown { node }),
                FailureEvent::at_secs(up_at_s, FailureEventKind::NodeUp { node }),
            ]);
            let model = FailureModel::new(&trace, SimDuration::from_secs_f64(2.0));
            let mut state = FailureState::new(&model, &cluster);
            let mut view = cluster.clone();
            let mut timeline = Timeline::new();
            state.advance(t(advance_to_s), &mut view, &mut timeline);
            (state, view, timeline)
        };

        // Recovery *after* the boundary (down@1s, boundary@3s, up@5s): one
        // big advance to 6s must still cross the boundary — detection is
        // replayed in time order, not sampled at the advance instant.
        let (state, view, timeline) = state_after(5.0, 6.0);
        let lag = timeline
            .with_prefix("detection-lag:")
            .next()
            .expect("the boundary was crossed before the recovery");
        assert_eq!(lag.start, t(1.0));
        assert_eq!(lag.end, t(3.0));
        // The NodeUp then re-admitted the node for tasks — but its wiped
        // replicas stay unreadable.
        assert!(view.is_up(node));
        assert!(!state.replica_alive(node, &view));

        // Recovery exactly *at* the boundary (half-open outage: serving
        // again at 3s) cancels detection entirely.
        let (_, view, timeline) = state_after(3.0, 6.0);
        assert!(view.is_up(node));
        assert_eq!(timeline.with_prefix("detection-lag:").count(), 0);
    }

    #[test]
    fn a_quick_rejoin_resolves_lost_attempts_before_the_detection_boundary() {
        use drc_cluster::{FailureEvent, FailureEventKind, FailureTrace};
        // A node hosting map tasks blips out for one second under an
        // enormous detection timeout: the lost attempts must resolve when
        // the node rejoins, not five minutes later at a boundary the
        // recovery cancelled.
        let code = CodeKind::Pentagon.build().unwrap();
        let cluster = Cluster::new(ClusterSpec::simulation_25(2));
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            6,
            PlacementPolicy::Random,
            &mut rng,
        )
        .unwrap();
        let job = JobSpec::new("blip", placement.data_blocks()).with_reduce_tasks(8);
        let run = |trace: &FailureTrace| {
            let net = drc_sim::ClusterNet::new(cluster.spec());
            let mut rng = ChaCha8Rng::seed_from_u64(43);
            run_job_traced(
                &job,
                code.as_ref(),
                &placement,
                &cluster,
                &DelayScheduler::default(),
                &mut rng,
                JobSite {
                    net: &net,
                    start: SimTime::ZERO,
                },
                FailureModel::new(trace, SimDuration::from_secs_f64(300.0)),
            )
            .unwrap()
        };
        let healthy = run(&FailureTrace::new());
        let fail_at = healthy.map_phase_s * 0.25;
        let victim = NodeId(5);
        let blip = FailureTrace::from_events(vec![
            FailureEvent::at_secs(fail_at, FailureEventKind::NodeDown { node: victim }),
            FailureEvent::at_secs(fail_at + 1.0, FailureEventKind::NodeUp { node: victim }),
        ]);
        let m = run(&blip);
        assert!(m.tasks_reexecuted >= 1, "the blip must cost an attempt");
        assert!(
            m.map_phase_s < healthy.map_phase_s + 30.0,
            "a 1 s blip must not stretch the map phase by the 300 s blind \
             window (healthy {:.3}s, blipped {:.3}s)",
            healthy.map_phase_s,
            m.map_phase_s
        );
        // The recovery cancelled detection, so no blind-window phase.
        assert_eq!(m.timeline.with_prefix("detection-lag:").count(), 0);
    }

    #[test]
    fn local_assignments_on_wiped_then_revived_nodes_read_degraded() {
        use drc_cluster::{FailureEvent, FailureEventKind, FailureTrace};
        // Every replica holder of block 0 fail-stops at t = 0 (zero
        // detection timeout) and is revived immediately after: the nodes
        // are back for scheduling — the delay scheduler will happily place
        // the task "locally" on one of them — but their disks are empty,
        // so the read must be a degraded reconstruction, never a local hit.
        let code = CodeKind::Pentagon.build().unwrap();
        let cluster = Cluster::new(ClusterSpec::simulation_25(4));
        let mut rng = ChaCha8Rng::seed_from_u64(61);
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            1,
            PlacementPolicy::Random,
            &mut rng,
        )
        .unwrap();
        let block = drc_cluster::GlobalBlockId::new(0, 0);
        let mut events: Vec<FailureEvent> = Vec::new();
        for &node in &placement.locations(block).unwrap() {
            events.push(FailureEvent::at_ns(0, FailureEventKind::NodeDown { node }));
            events.push(FailureEvent::at_ns(1, FailureEventKind::NodeUp { node }));
        }
        let trace = FailureTrace::from_events(events);
        let job = JobSpec::new("revived", vec![block]);
        let net = drc_sim::ClusterNet::new(cluster.spec());
        let metrics = run_job_traced(
            &job,
            code.as_ref(),
            &placement,
            &cluster,
            &DelayScheduler::default(),
            &mut rng,
            JobSite {
                net: &net,
                start: SimTime::ZERO + SimDuration::from_secs_f64(1.0),
            },
            FailureModel::new(&trace, SimDuration::ZERO),
        )
        .unwrap();
        assert_eq!(metrics.local_map_tasks, 0, "wiped data cannot be local");
        assert_eq!(metrics.degraded_reads, 1);
        assert_eq!(metrics.degraded_read_bytes, 3 * 128 * 1024 * 1024);
        assert_eq!(metrics.tasks_reexecuted, 0, "the nodes are alive again");
    }

    #[test]
    fn reads_after_an_undetected_failure_go_degraded() {
        use drc_cluster::{FailureEvent, FailureEventKind, FailureTrace};
        // Both replicas of block 0 fail at t = 0 with a *large* detection
        // timeout: the scheduler still believes they are up, but the reads
        // must go degraded immediately (a silent node serves nothing).
        let code = CodeKind::Pentagon.build().unwrap();
        let cluster = Cluster::new(ClusterSpec::simulation_25(4));
        let mut rng = ChaCha8Rng::seed_from_u64(51);
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            1,
            PlacementPolicy::Random,
            &mut rng,
        )
        .unwrap();
        let block = drc_cluster::GlobalBlockId::new(0, 0);
        let victims: Vec<NodeId> = placement.locations(block).unwrap().to_vec();
        let trace = FailureTrace::from_events(
            victims
                .iter()
                .map(|&node| FailureEvent::at_ns(0, FailureEventKind::NodeDown { node }))
                .collect(),
        );
        // Only the failed block is read, from elsewhere: the job's single
        // task cannot land on a victim or the attempt would just die.
        let job = JobSpec::new("blind-degraded", vec![block]);
        let net = drc_sim::ClusterNet::new(cluster.spec());
        let metrics = run_job_traced(
            &job,
            code.as_ref(),
            &placement,
            &cluster,
            &DelayScheduler::default(),
            &mut rng,
            JobSite {
                net: &net,
                start: SimTime::ZERO,
            },
            FailureModel::new(&trace, SimDuration::from_secs_f64(1e6)),
        )
        .unwrap();
        assert_eq!(metrics.degraded_reads, 1);
        assert_eq!(metrics.degraded_read_bytes, 3 * 128 * 1024 * 1024);
        assert_eq!(metrics.local_map_tasks, 0);
    }

    #[test]
    fn scale_bytes_rounds_saturates_and_rejects_non_finite() {
        // Round-to-nearest instead of the old silent truncation …
        assert_eq!(scale_bytes(10, 0.25, "t").unwrap(), 3); // 2.5 rounds away from 0
        assert_eq!(scale_bytes(3, 1.0 / 3.0, "t").unwrap(), 1);
        assert_eq!(scale_bytes(1 << 30, 1.0, "t").unwrap(), 1 << 30);
        // … saturation instead of a wrapping cast …
        assert_eq!(scale_bytes(u64::MAX, 2.0, "t").unwrap(), u64::MAX);
        // … and an error (never a silent 0) for non-finite or negative
        // ratios, the failure mode a NaN shuffle ratio used to trigger.
        assert!(scale_bytes(1, f64::NAN, "t").is_err());
        assert!(scale_bytes(1, f64::INFINITY, "t").is_err());
        assert!(scale_bytes(1, -0.5, "t").is_err());
        assert_eq!(scale_bytes(0, 1.0, "t").unwrap(), 0);
    }

    #[test]
    fn degraded_read_spans_appear_on_the_timeline() {
        let code = CodeKind::Pentagon.build().unwrap();
        let mut cluster = Cluster::new(ClusterSpec::simulation_25(4));
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            1,
            PlacementPolicy::Random,
            &mut rng,
        )
        .unwrap();
        let block = drc_cluster::GlobalBlockId::new(0, 0);
        for &n in &placement.locations(block).unwrap() {
            cluster.set_down(n);
        }
        let job = JobSpec::new("degraded", vec![block]);
        let metrics = run_job(
            &job,
            code.as_ref(),
            &placement,
            &cluster,
            &DelayScheduler::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(
            metrics.timeline.bytes_with_prefix("degraded-read:"),
            metrics.degraded_read_bytes
        );
        assert!(metrics.timeline.overlap("map:", "degraded-read:").0 > 0);
    }

    #[test]
    fn scheduler_kind_integration() {
        // The engine works with every scheduler kind.
        let code = CodeKind::Heptagon.build().unwrap();
        let cluster = Cluster::new(ClusterSpec::simulation_25(4));
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            5,
            PlacementPolicy::Random,
            &mut rng,
        )
        .unwrap();
        let job = JobSpec::new("sweep", placement.data_blocks());
        for kind in SchedulerKind::all() {
            let scheduler = kind.build();
            let m = run_job(
                &job,
                code.as_ref(),
                &placement,
                &cluster,
                scheduler.as_ref(),
                &mut rng,
            )
            .unwrap();
            assert_eq!(m.map_tasks, 100);
            assert!(m.job_time_s.is_finite());
        }
    }
}
