//! Task-to-node assignments and locality statistics.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use drc_cluster::NodeId;

use crate::graph::TaskNodeGraph;
use crate::job::TaskId;

/// Where a map task ended up running.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskAssignment {
    /// The task.
    pub task: TaskId,
    /// The node the task runs on.
    pub node: NodeId,
    /// `true` if the node holds a replica of the task's block (a *local*
    /// task in the paper's terminology).
    pub local: bool,
}

/// A complete assignment of a set of map tasks to nodes.
///
/// Produced by the task schedulers; consumed by the locality experiments
/// (Fig. 3) and the execution engine (Fig. 4/5).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Assignment {
    assignments: Vec<TaskAssignment>,
}

impl Assignment {
    /// Creates an assignment from the given per-task placements.
    pub fn new(assignments: Vec<TaskAssignment>) -> Self {
        Assignment { assignments }
    }

    /// The individual task assignments, in the order they were made.
    pub fn iter(&self) -> impl Iterator<Item = &TaskAssignment> {
        self.assignments.iter()
    }

    /// Number of assigned tasks.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Returns `true` if no task was assigned.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Number of tasks that run on a node holding their block.
    pub fn local_tasks(&self) -> usize {
        self.assignments.iter().filter(|a| a.local).count()
    }

    /// Number of tasks that must read their block over the network.
    pub fn remote_tasks(&self) -> usize {
        self.len() - self.local_tasks()
    }

    /// Percentage of local tasks — the paper's *data locality* metric.
    ///
    /// Returns 100% for an empty assignment (no task had to go remote).
    pub fn locality_percent(&self) -> f64 {
        if self.assignments.is_empty() {
            return 100.0;
        }
        self.local_tasks() as f64 / self.len() as f64 * 100.0
    }

    /// Number of tasks assigned to each node.
    pub fn tasks_per_node(&self) -> BTreeMap<NodeId, usize> {
        let mut map = BTreeMap::new();
        for a in &self.assignments {
            *map.entry(a.node).or_insert(0) += 1;
        }
        map
    }

    /// Verifies the assignment against a graph and slot capacities: every
    /// task assigned at most once, capacities respected, and the `local` flag
    /// consistent with the graph's adjacency. Returns a description of the
    /// first violation, if any.
    pub fn validate(&self, graph: &TaskNodeGraph, slots_per_node: usize) -> Option<String> {
        let mut seen = std::collections::BTreeSet::new();
        let mut per_node: BTreeMap<NodeId, usize> = BTreeMap::new();
        for a in &self.assignments {
            if !seen.insert(a.task) {
                return Some(format!("task {:?} assigned twice", a.task));
            }
            let count = per_node.entry(a.node).or_insert(0);
            *count += 1;
            if *count > slots_per_node {
                return Some(format!("node {} over capacity", a.node));
            }
            let is_local = graph.task(a.task).local_nodes.contains(&a.node);
            if is_local != a.local {
                return Some(format!("task {:?} locality flag mismatch", a.task));
            }
        }
        None
    }
}

impl FromIterator<TaskAssignment> for Assignment {
    fn from_iter<I: IntoIterator<Item = TaskAssignment>>(iter: I) -> Self {
        Assignment::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ta(task: usize, node: usize, local: bool) -> TaskAssignment {
        TaskAssignment {
            task: TaskId(task),
            node: NodeId(node),
            local,
        }
    }

    #[test]
    fn locality_math() {
        let a = Assignment::new(vec![
            ta(0, 0, true),
            ta(1, 1, false),
            ta(2, 0, true),
            ta(3, 2, true),
        ]);
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
        assert_eq!(a.local_tasks(), 3);
        assert_eq!(a.remote_tasks(), 1);
        assert!((a.locality_percent() - 75.0).abs() < 1e-12);
        assert_eq!(a.tasks_per_node()[&NodeId(0)], 2);
        assert_eq!(a.iter().count(), 4);
    }

    #[test]
    fn empty_assignment_is_fully_local() {
        let a = Assignment::default();
        assert!(a.is_empty());
        assert_eq!(a.locality_percent(), 100.0);
    }

    #[test]
    fn collects_from_iterator() {
        let a: Assignment = vec![ta(0, 0, true)].into_iter().collect();
        assert_eq!(a.len(), 1);
    }
}
