//! The data-locality simulation of §3.2 (Fig. 3).
//!
//! For a given code, scheduler, cluster and *load* (map tasks as a percentage
//! of the cluster's total map slots), the simulation repeatedly:
//!
//! 1. places enough stripes of the code on the cluster to provide one data
//!    block per map task,
//! 2. builds the task–node bipartite graph,
//! 3. runs the scheduler against the per-node slot capacities, and
//! 4. records the percentage of tasks that ended up on a node holding their
//!    block.
//!
//! Averaging over many random placements gives the curves of Fig. 3.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use drc_cluster::{Cluster, ClusterSpec, PlacementMap, PlacementPolicy};
use drc_codes::CodeKind;

use crate::graph::TaskNodeGraph;
use crate::job::{MapTask, TaskId};
use crate::scheduler::SchedulerKind;
use crate::MapReduceError;

/// Configuration of one locality-simulation point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalityConfig {
    /// The coding scheme under test.
    pub code: CodeKind,
    /// The task scheduler under test.
    pub scheduler: SchedulerKind,
    /// The cluster (node count and map slots per node).
    pub cluster: ClusterSpec,
    /// Load: map tasks as a percentage of total map slots (§3.2).
    pub load_percent: f64,
    /// Number of independent random placements to average over.
    pub trials: usize,
    /// Base RNG seed; trial `i` uses `seed + i`.
    pub seed: u64,
}

impl LocalityConfig {
    /// A convenient starting point: the paper's 25-node simulation cluster
    /// with the given map slots per node, 200 trials.
    pub fn new(
        code: CodeKind,
        scheduler: SchedulerKind,
        map_slots: usize,
        load_percent: f64,
    ) -> Self {
        LocalityConfig {
            code,
            scheduler,
            cluster: ClusterSpec::simulation_25(map_slots),
            load_percent,
            trials: 200,
            seed: 0xD0C5,
        }
    }

    /// Overrides the number of trials.
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The outcome of a locality simulation point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalityResult {
    /// The configuration's code.
    pub code: CodeKind,
    /// The configuration's scheduler.
    pub scheduler: SchedulerKind,
    /// The simulated load percentage.
    pub load_percent: f64,
    /// Map slots per node.
    pub map_slots: usize,
    /// Number of map tasks per trial.
    pub tasks: usize,
    /// Number of trials.
    pub trials: usize,
    /// Mean data locality over the trials, in percent.
    pub mean_locality_percent: f64,
    /// Sample standard deviation of the per-trial locality, in percent.
    pub std_dev_percent: f64,
}

/// Runs the locality simulation for one `(code, scheduler, load)` point.
///
/// # Errors
///
/// Returns [`MapReduceError::InvalidConfig`] if the load or trial count is
/// not positive, or a placement error if the code does not fit the cluster.
pub fn simulate_locality(config: &LocalityConfig) -> Result<LocalityResult, MapReduceError> {
    if config.trials == 0 {
        return Err(MapReduceError::InvalidConfig {
            reason: "at least one trial is required".to_string(),
        });
    }
    if config.load_percent <= 0.0 {
        return Err(MapReduceError::InvalidConfig {
            reason: "load must be positive".to_string(),
        });
    }
    let cluster = Cluster::new(config.cluster.clone());
    let code = config.code.build().map_err(MapReduceError::Code)?;
    let scheduler = config.scheduler.build();
    let tasks_per_trial = config.cluster.tasks_for_load(config.load_percent).max(1);
    let stripes = tasks_per_trial.div_ceil(code.data_blocks());

    let mut samples = Vec::with_capacity(config.trials);
    for trial in 0..config.trials {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(trial as u64));
        let placement = PlacementMap::place(
            code.as_ref(),
            &cluster,
            stripes,
            PlacementPolicy::Random,
            &mut rng,
        )
        .map_err(MapReduceError::Cluster)?;
        let map_tasks: Vec<MapTask> = placement
            .data_blocks()
            .into_iter()
            .take(tasks_per_trial)
            .enumerate()
            .map(|(i, block)| MapTask {
                id: TaskId(i),
                block,
            })
            .collect();
        let graph = TaskNodeGraph::build(&map_tasks, &placement, &cluster);
        let capacities = graph
            .nodes()
            .iter()
            .map(|&n| (n, config.cluster.map_slots_per_node))
            .collect();
        let assignment = scheduler.assign(&graph, &capacities, &mut rng);
        debug_assert!(assignment
            .validate(&graph, config.cluster.map_slots_per_node)
            .is_none());
        samples.push(assignment.locality_percent());
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let variance = if samples.len() > 1 {
        samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64
    } else {
        0.0
    };
    Ok(LocalityResult {
        code: config.code,
        scheduler: config.scheduler,
        load_percent: config.load_percent,
        map_slots: config.cluster.map_slots_per_node,
        tasks: tasks_per_trial,
        trials: config.trials,
        mean_locality_percent: mean,
        std_dev_percent: variance.sqrt(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(code: CodeKind, scheduler: SchedulerKind, mu: usize, load: f64) -> LocalityResult {
        simulate_locality(
            &LocalityConfig::new(code, scheduler, mu, load)
                .with_trials(40)
                .with_seed(99),
        )
        .unwrap()
    }

    #[test]
    fn invalid_configs_rejected() {
        let bad =
            LocalityConfig::new(CodeKind::TWO_REP, SchedulerKind::Delay, 2, 50.0).with_trials(0);
        assert!(simulate_locality(&bad).is_err());
        let bad = LocalityConfig::new(CodeKind::TWO_REP, SchedulerKind::Delay, 2, 0.0);
        assert!(simulate_locality(&bad).is_err());
    }

    #[test]
    fn locality_decreases_with_load_for_pentagon_delay() {
        // The qualitative shape of Fig. 3: locality falls as load rises.
        let low = point(CodeKind::Pentagon, SchedulerKind::Delay, 2, 25.0);
        let high = point(CodeKind::Pentagon, SchedulerKind::Delay, 2, 100.0);
        assert!(low.mean_locality_percent >= high.mean_locality_percent);
        assert!(high.mean_locality_percent < 95.0);
    }

    #[test]
    fn two_rep_beats_pentagon_beats_heptagon_at_two_slots() {
        // Fig. 3 (mu = 2): the array codes lose significant locality relative
        // to plain double replication, and the heptagon (6 blocks per node)
        // suffers more than the pentagon (4 blocks per node).
        let two_rep = point(CodeKind::TWO_REP, SchedulerKind::Delay, 2, 100.0);
        let pentagon = point(CodeKind::Pentagon, SchedulerKind::Delay, 2, 100.0);
        let heptagon = point(CodeKind::Heptagon, SchedulerKind::Delay, 2, 100.0);
        assert!(two_rep.mean_locality_percent > pentagon.mean_locality_percent);
        assert!(pentagon.mean_locality_percent > heptagon.mean_locality_percent);
    }

    #[test]
    fn more_map_slots_recover_locality() {
        // Fig. 3: "the loss in locality decreases with increasing number of
        // map slots per node"; at mu = 8 both codes exceed 90% at full load.
        let mu2 = point(CodeKind::Pentagon, SchedulerKind::Delay, 2, 100.0);
        let mu8 = point(CodeKind::Pentagon, SchedulerKind::Delay, 8, 100.0);
        assert!(mu8.mean_locality_percent > mu2.mean_locality_percent);
        assert!(mu8.mean_locality_percent > 85.0);
        let hept8 = point(CodeKind::Heptagon, SchedulerKind::Delay, 8, 100.0);
        let hept2 = point(CodeKind::Heptagon, SchedulerKind::Delay, 2, 100.0);
        assert!(hept8.mean_locality_percent > hept2.mean_locality_percent);
        assert!(hept8.mean_locality_percent > 80.0);
        // The optimal (max-matching) assignment exceeds 90% for both codes,
        // the paper's headline number for mu = 8.
        let pent8_mm = point(CodeKind::Pentagon, SchedulerKind::MaxMatching, 8, 100.0);
        let hept8_mm = point(CodeKind::Heptagon, SchedulerKind::MaxMatching, 8, 100.0);
        assert!(pent8_mm.mean_locality_percent > 90.0);
        assert!(hept8_mm.mean_locality_percent > 90.0);
    }

    #[test]
    fn max_matching_dominates_delay_scheduling() {
        for code in [CodeKind::Pentagon, CodeKind::Heptagon] {
            let mm = point(code, SchedulerKind::MaxMatching, 4, 100.0);
            let ds = point(code, SchedulerKind::Delay, 4, 100.0);
            assert!(
                mm.mean_locality_percent >= ds.mean_locality_percent - 0.5,
                "{code}: mm {} < ds {}",
                mm.mean_locality_percent,
                ds.mean_locality_percent
            );
        }
    }

    #[test]
    fn result_metadata_is_populated() {
        let r = point(CodeKind::TWO_REP, SchedulerKind::Peeling, 4, 75.0);
        assert_eq!(r.map_slots, 4);
        assert_eq!(r.tasks, 75);
        assert_eq!(r.trials, 40);
        assert!(r.mean_locality_percent > 0.0 && r.mean_locality_percent <= 100.0);
        assert!(r.std_dev_percent >= 0.0);
    }
}
