//! Workspace facade for the HotStorage'14 double-replication-codes
//! reproduction.
//!
//! All functionality lives in the `drc_*` crates; this crate re-exports
//! [`drc_core`] so the repository-level integration tests and examples have a
//! single dependency root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use drc_core::*;

/// Re-export of the whole core crate for `drc_repro::core::...` paths.
pub use drc_core as core;
